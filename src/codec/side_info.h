/**
 * @file
 * Decode-side analysis export: the per-macroblock facts a decoder
 * recovers for free while parsing (motion vectors, reference picture,
 * intra/inter mode, quantiser) packaged so a downstream encoder can
 * reuse them instead of repeating the full search — the classic
 * transcoder "analysis reuse" trick.
 *
 * The channel is deliberately one-way and advisory. A decoder that has
 * been given a DecodeSideInfo sink pushes one PictureSideInfo per
 * decoded picture; the HintMap implementation buffers them by display
 * index so the encoding side of a transcode pipeline can claim the
 * matching picture when it arrives (the two sides share the same GOP
 * discipline, so display index is the stable join key even though both
 * run in coding order). Encoders treat every hint as a suggestion:
 * vectors seed motion-search candidates that the estimator clamps to
 * its own legal window, and mode hints prune trials but never skip the
 * final cost comparison, so a wrong or stale hint costs quality, never
 * correctness.
 */
#ifndef HDVB_CODEC_SIDE_INFO_H
#define HDVB_CODEC_SIDE_INFO_H

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "codec/codec.h"
#include "common/types.h"
#include "mc/mc.h"

namespace hdvb {

/** What one decoded macroblock told us about itself. */
struct MbSideInfo {
    /** Coding mode, normalised across the three codecs. */
    enum Mode : u8 {
        kIntra = 0,     ///< intra coded (no usable vectors)
        kInterFwd = 1,  ///< forward prediction only
        kInterBwd = 2,  ///< backward prediction only (B pictures)
        kInterBi = 3,   ///< bidirectional prediction
        kSkip = 4,      ///< skipped / copied macroblock
    };

    Mode mode = kIntra;
    /** Forward reference picture index (0 = nearest anchor; only the
     * H.264 decoder reports anything larger). */
    u8 ref = 0;
    /** Motion vectors in QUARTER-sample units regardless of source
     * codec (the MPEG-2 decoder scales its half-sample vectors up). */
    MotionVector fwd{};
    MotionVector bwd{};
};

/** Side info for one whole decoded picture. */
struct PictureSideInfo {
    s64 poc = 0;  ///< display index (Packet::poc)
    PictureType type = PictureType::kI;
    int mb_w = 0;   ///< macroblock columns
    int mb_h = 0;   ///< macroblock rows
    int quant = 0;  ///< picture quantiser (qscale or QP)
    std::vector<MbSideInfo> mbs;  ///< mb_w * mb_h, raster order

    MbSideInfo &
    at(int mbx, int mby)
    {
        return mbs[static_cast<size_t>(mby) * mb_w + mbx];
    }
    const MbSideInfo &
    at(int mbx, int mby) const
    {
        return mbs[static_cast<size_t>(mby) * mb_w + mbx];
    }
};

/** Sink for decoder side info (see VideoDecoder::export_side_info). */
class DecodeSideInfo
{
  public:
    virtual ~DecodeSideInfo() = default;

    /** Called once per decoded picture, from the decode() thread,
     * before the picture's frame is emitted. */
    virtual void push(PictureSideInfo info) = 0;
};

/** HintMap traffic counters (transcode reporting). */
struct HintMapStats {
    s64 pushed = 0;  ///< pictures received from the decoder
    s64 taken = 0;   ///< pictures claimed by the encoder
    s64 missed = 0;  ///< encoder asked for a poc that was not buffered
};

/**
 * The standard DecodeSideInfo sink: buffers pictures by display index
 * until the encoding side claims them. Thread-safe — in a pipelined
 * transcode the decode and encode sessions run on different scheduler
 * workers. take() removes the picture, so memory stays bounded by the
 * decode/encode skew (a few pictures).
 */
class HintMap final : public DecodeSideInfo
{
  public:
    void push(PictureSideInfo info) override;

    /** Claim the hint picture for display index @p poc, or null when
     * the decoder never pushed one (counted as a miss). */
    std::shared_ptr<const PictureSideInfo> take(s64 poc);

    HintMapStats stats() const;

    /** Drop every buffered picture (stats survive). */
    void clear();

  private:
    mutable std::mutex mu_;
    std::map<s64, std::shared_ptr<const PictureSideInfo>> by_poc_;
    HintMapStats stats_;
};

}  // namespace hdvb

#endif  // HDVB_CODEC_SIDE_INFO_H
