/**
 * @file
 * Macroblock concealment for the error-resilient decode paths. Two
 * strategies, per the classic decoder playbook: temporal (copy the
 * co-located macroblock from the newest reference picture — used for P
 * and B pictures) and spatial DC (fill from the reconstructed pixel row
 * directly above — used for intra pictures, which have no reference).
 */
#ifndef HDVB_CODEC_CONCEAL_H
#define HDVB_CODEC_CONCEAL_H

#include "video/frame.h"

namespace hdvb {

/** Copy the co-located 16x16 luma (8x8 chroma) macroblock at
 * (mbx, mby) from @p ref into @p dst. Frames must share dimensions. */
void conceal_mb_from_ref(Frame *dst, const Frame &ref, int mbx, int mby);

/**
 * Fill the macroblock at (mbx, mby) of @p dst with, per plane, the
 * average of the pixel row directly above the macroblock (mid-grey 128
 * for the top row, which has no neighbour).
 */
void conceal_mb_dc(Frame *dst, int mbx, int mby);

}  // namespace hdvb

#endif  // HDVB_CODEC_CONCEAL_H
