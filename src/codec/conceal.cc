#include "codec/conceal.h"

#include <cstring>

#include "common/check.h"

namespace hdvb {
namespace {

void
copy_block(Plane *dst, const Plane &src, int x, int y, int size)
{
    for (int j = 0; j < size; ++j)
        std::memcpy(dst->row(y + j) + x, src.row(y + j) + x,
                    static_cast<size_t>(size) * sizeof(Pixel));
}

void
dc_fill_block(Plane *plane, int x, int y, int size)
{
    Pixel dc = 128;
    if (y > 0) {
        int sum = 0;
        const Pixel *above = plane->row(y - 1) + x;
        for (int i = 0; i < size; ++i)
            sum += above[i];
        dc = static_cast<Pixel>((sum + size / 2) / size);
    }
    for (int j = 0; j < size; ++j)
        std::memset(plane->row(y + j) + x, dc,
                    static_cast<size_t>(size) * sizeof(Pixel));
}

}  // namespace

void
conceal_mb_from_ref(Frame *dst, const Frame &ref, int mbx, int mby)
{
    HDVB_DCHECK(dst->width() == ref.width() &&
                dst->height() == ref.height());
    copy_block(&dst->luma(), ref.luma(), mbx * 16, mby * 16, 16);
    copy_block(&dst->cb(), ref.cb(), mbx * 8, mby * 8, 8);
    copy_block(&dst->cr(), ref.cr(), mbx * 8, mby * 8, 8);
}

void
conceal_mb_dc(Frame *dst, int mbx, int mby)
{
    dc_fill_block(&dst->luma(), mbx * 16, mby * 16, 16);
    dc_fill_block(&dst->cb(), mbx * 8, mby * 8, 8);
    dc_fill_block(&dst->cr(), mbx * 8, mby * 8, 8);
}

}  // namespace hdvb
