#include "codec/side_info.h"

#include <utility>

namespace hdvb {

void
HintMap::push(PictureSideInfo info)
{
    auto shared =
        std::make_shared<const PictureSideInfo>(std::move(info));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pushed;
    by_poc_[shared->poc] = std::move(shared);
}

std::shared_ptr<const PictureSideInfo>
HintMap::take(s64 poc)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_poc_.find(poc);
    if (it == by_poc_.end()) {
        ++stats_.missed;
        return nullptr;
    }
    std::shared_ptr<const PictureSideInfo> info = std::move(it->second);
    by_poc_.erase(it);
    ++stats_.taken;
    return info;
}

HintMapStats
HintMap::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
HintMap::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    by_poc_.clear();
}

}  // namespace hdvb
