#include "codec/codec.h"

#include "codec/side_info.h"
#include "me/me.h"

namespace hdvb {

const char *
picture_type_name(PictureType type)
{
    switch (type) {
      case PictureType::kI: return "I";
      case PictureType::kP: return "P";
      case PictureType::kB: return "B";
    }
    return "?";
}

Status
CodecConfig::validate() const
{
    if (width <= 0 || height <= 0)
        return Status::invalid_argument("dimensions must be positive");
    if (width % 16 != 0 || height % 16 != 0)
        return Status::invalid_argument(
            "dimensions must be multiples of 16 (the benchmark "
            "resolutions 720x576, 1280x720, 1920x1088 all are)");
    if (qscale < 1 || qscale > 31)
        return Status::invalid_argument("qscale out of range 1..31");
    if (qp < 0 || qp > 51)
        return Status::invalid_argument("qp out of range 0..51");
    if (bframes < 0 || bframes > 4)
        return Status::invalid_argument("bframes out of range 0..4");
    if (me_range < 1 || me_range > kMeMargin)
        return Status::invalid_argument("me_range out of range");
    if (refs < 1 || refs > 16)
        return Status::invalid_argument("refs out of range 1..16");
    if (threads < 1 || threads > kMaxCodecThreads)
        return Status::invalid_argument("threads out of range 1..64");
    if (approx < 0 || approx > 3)
        return Status::invalid_argument("approx out of range 0..3");
    if (fps_num <= 0 || fps_den <= 0)
        return Status::invalid_argument("bad frame rate");
    return Status::ok();
}

void
EncoderBase::emit(const Frame &src, PictureType type,
                  std::vector<Packet> *out)
{
    Packet packet;
    packet.type = type;
    packet.poc = src.poc();
    packet.coding_index = coding_index_++;
    packet.data = encode_picture(src, type);
    out->push_back(std::move(packet));
}

Status
EncoderBase::encode(const Frame &frame, std::vector<Packet> *out)
{
    if (frame.width() != config_.width ||
        frame.height() != config_.height) {
        return Status::invalid_argument("frame size != configured size");
    }

    Frame copy = new_frame();
    copy.copy_from(frame);
    copy.set_poc(next_display_++);

    if (copy.poc() == 0) {
        // First picture: the stream's only I picture (paper Section IV).
        emit(copy, PictureType::kI, out);
        return Status::ok();
    }

    pending_.push_back(std::move(copy));
    if (static_cast<int>(pending_.size()) == config_.bframes + 1) {
        // The newest pending frame becomes the next anchor (P); the
        // frames before it in display order are B pictures.
        emit(pending_.back(), PictureType::kP, out);
        pending_.pop_back();
        while (!pending_.empty()) {
            emit(pending_.front(), PictureType::kB, out);
            pending_.pop_front();
        }
    }
    return Status::ok();
}

Status
EncoderBase::use_hints(std::shared_ptr<HintMap> hints)
{
    hints_ = std::move(hints);
    return Status::ok();
}

std::shared_ptr<const PictureSideInfo>
EncoderBase::take_hints(const Frame &src, PictureType type) const
{
    if (!hints_)
        return nullptr;
    std::shared_ptr<const PictureSideInfo> info =
        hints_->take(src.poc());
    if (!info)
        return nullptr;
    // A hint picture is only usable when it describes the same coding
    // decision this encode is about to make: same picture type (the
    // vector directions must line up) and same macroblock grid.
    if (info->type != type || info->mb_w != config_.width / 16 ||
        info->mb_h != config_.height / 16) {
        return nullptr;
    }
    if (info->mbs.size() !=
        static_cast<size_t>(info->mb_w) * info->mb_h) {
        return nullptr;
    }
    return info;
}

Status
EncoderBase::flush(std::vector<Packet> *out)
{
    if (!pending_.empty()) {
        emit(pending_.back(), PictureType::kP, out);
        pending_.pop_back();
        while (!pending_.empty()) {
            emit(pending_.front(), PictureType::kB, out);
            pending_.pop_front();
        }
    }
    return Status::ok();
}

Status
DecoderBase::export_side_info(DecodeSideInfo *sink)
{
    if (sink != nullptr && config_.error_resilience) {
        return Status::unimplemented(
            "side-info export requires the serial decode path "
            "(error_resilience reconstructs rows in parallel and "
            "conceals, so its vectors are not trustworthy hints)");
    }
    side_info_ = sink;
    return Status::ok();
}

Status
DecoderBase::decode(const Packet &packet, std::vector<Frame> *out)
{
    Frame frame;
    const Status status = decode_picture(packet, &frame);
    if (!status.is_ok()) {
        // Resilient last resort: a picture too damaged even for
        // concealment is replaced by a repeat of the newest anchor.
        // The subclass's reference state is untouched, which stays
        // consistent because the repeated picture equals that anchor.
        if (!config_.error_resilience || !has_held_)
            return status;
        frame = new_frame();
        frame.copy_from(held_anchor_);
        ++stats_.pictures_dropped;
    }
    frame.set_poc(packet.poc);

    if (packet.type == PictureType::kB) {
        out->push_back(std::move(frame));
        return Status::ok();
    }
    if (has_held_)
        out->push_back(std::move(held_anchor_));
    held_anchor_ = std::move(frame);
    has_held_ = true;
    return Status::ok();
}

Status
DecoderBase::flush(std::vector<Frame> *out)
{
    if (has_held_) {
        out->push_back(std::move(held_anchor_));
        has_held_ = false;
    }
    return Status::ok();
}

}  // namespace hdvb
