#include "bitstream/resync.h"

#include "common/check.h"

namespace hdvb {

void
escape_emulation(const u8 *data, size_t size, std::vector<u8> *out)
{
    int zero_run = 0;
    for (size_t i = 0; i < size; ++i) {
        const u8 b = data[i];
        if (zero_run >= 2 && b <= 0x03) {
            out->push_back(0x03);
            zero_run = 0;
        }
        out->push_back(b);
        zero_run = b == 0 ? zero_run + 1 : 0;
    }
}

std::vector<u8>
unescape_emulation(const u8 *data, size_t size)
{
    std::vector<u8> out;
    out.reserve(size);
    int zero_run = 0;
    for (size_t i = 0; i < size; ++i) {
        const u8 b = data[i];
        if (zero_run >= 2 && b == 0x03) {
            zero_run = 0;  // emulation-prevention byte: drop it
            continue;
        }
        out.push_back(b);
        zero_run = b == 0 ? zero_run + 1 : 0;
    }
    return out;
}

void
append_resync_marker(std::vector<u8> *out, int row)
{
    HDVB_DCHECK(row >= 0 && row < 256);
    out->push_back(0x00);
    out->push_back(0x00);
    out->push_back(0x01);
    out->push_back(static_cast<u8>(row));
}

std::vector<ResyncMarker>
scan_resync_markers(const std::vector<u8> &data, int max_rows)
{
    std::vector<ResyncMarker> markers;
    if (data.size() < 4)
        return markers;
    for (size_t i = 0; i + 4 <= data.size();) {
        if (data[i] == 0x00 && data[i + 1] == 0x00 && data[i + 2] == 0x01 &&
            data[i + 3] < max_rows) {
            markers.push_back({static_cast<int>(data[i + 3]), i});
            i += 4;
        } else {
            ++i;
        }
    }
    return markers;
}

}  // namespace hdvb
