#include "bitstream/bit_writer.h"

// BitWriter is fully inline; this translation unit anchors the library.
