/**
 * @file
 * Order-0 Exp-Golomb codes, the universal integer code H.264 uses for
 * header syntax; our MPEG-class codecs also use it for escape values and
 * motion-vector differences (the same code class the standards' MV VLC
 * tables belong to — see DESIGN.md section 2).
 */
#ifndef HDVB_BITSTREAM_EXP_GOLOMB_H
#define HDVB_BITSTREAM_EXP_GOLOMB_H

#include <bit>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "common/types.h"

namespace hdvb {

/** Write unsigned Exp-Golomb; @p value must be < 2^31 - 1. */
inline void
write_ue(BitWriter &bw, u32 value)
{
    HDVB_DCHECK(value < 0x7FFFFFFEu);
    const u32 code = value + 1;
    int bits = 0;
    for (u32 v = code; v != 0; v >>= 1)
        ++bits;
    bw.put_bits(0, bits - 1);
    bw.put_bits(code, bits);
}

/** Read unsigned Exp-Golomb. Returns 0 on malformed/overlong prefixes. */
inline u32
read_ue(BitReader &br)
{
    // Fast path: count the leading zeros in one 24-bit peek instead of
    // reading bit by bit. A set bit in the window is always real data
    // (peek_bits zero-pads past the end, it never injects ones), so
    // when the terminator sits within the first 12 bits the whole
    // codeword (2*zeros+1 <= 23 bits) is consumed with a single
    // get_bits — which reproduces the slow loop's value, consumption
    // and error-latch behaviour exactly, including truncation mid-
    // suffix (both zero-fill through the same get_bits path). Streams
    // with longer prefixes (values >= 2^12 - 1), an all-zero window
    // (truncation or an overlong prefix) or an already-latched error
    // fall back to the bit-by-bit loop below, which preserves the
    // historical semantics for every edge case.
    if (!br.has_error()) {
        const u32 window = br.peek_bits(24);
        if (window != 0) {
            const int lead =
                std::countl_zero(window << 8);  // zeros in the 24 MSBs
            if (lead <= 11)
                return br.get_bits(2 * lead + 1) - 1;
        }
    }

    int zeros = 0;
    while (zeros < 32 && br.get_bit() == 0) {
        if (br.has_error())
            return 0;
        ++zeros;
    }
    if (zeros >= 32) {
        // Malformed prefix: no legal code starts with 32 zeros. Latch
        // the reader error so callers can tell this from a legal 0.
        br.set_error();
        return 0;
    }
    u32 value = 1;
    if (zeros > 0)
        value = (1u << zeros) | br.get_bits(zeros);
    return value - 1;
}

/** Signed Exp-Golomb mapping: 0, 1, -1, 2, -2, ... */
inline void
write_se(BitWriter &bw, s32 value)
{
    const u32 mapped = value > 0 ? static_cast<u32>(value) * 2 - 1
                                 : static_cast<u32>(-value) * 2;
    write_ue(bw, mapped);
}

/** Read signed Exp-Golomb. */
inline s32
read_se(BitReader &br)
{
    const u32 mapped = read_ue(br);
    if (mapped & 1)
        return static_cast<s32>((mapped + 1) >> 1);
    return -static_cast<s32>(mapped >> 1);
}

/** Number of bits write_ue would use (for ME rate models). */
inline int
ue_bits(u32 value)
{
    const u32 code = value + 1;
    int bits = 0;
    for (u32 v = code; v != 0; v >>= 1)
        ++bits;
    return 2 * bits - 1;
}

/** Number of bits write_se would use. */
inline int
se_bits(s32 value)
{
    const u32 mapped = value > 0 ? static_cast<u32>(value) * 2 - 1
                                 : static_cast<u32>(-value) * 2;
    return ue_bits(mapped);
}

}  // namespace hdvb

#endif  // HDVB_BITSTREAM_EXP_GOLOMB_H
