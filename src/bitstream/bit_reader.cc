#include "bitstream/bit_reader.h"

// BitReader is fully inline; this translation unit anchors the library.
