#include "bitstream/vlc.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace hdvb {

namespace {

/** Compute unrestricted Huffman code lengths for @p weights. */
std::vector<int>
huffman_lengths(const std::vector<u64> &weights)
{
    const int n = static_cast<int>(weights.size());
    if (n == 1)
        return {1};

    // Node arena: leaves first, then internal nodes.
    struct Node { u64 weight; int parent; };
    std::vector<Node> nodes;
    nodes.reserve(2 * n);
    using HeapItem = std::pair<u64, int>;  // (weight, node index)
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>> heap;
    for (int i = 0; i < n; ++i) {
        const u64 w = weights[i] == 0 ? 1 : weights[i];
        nodes.push_back({w, -1});
        heap.push({w, i});
    }
    while (heap.size() > 1) {
        const auto [wa, a] = heap.top();
        heap.pop();
        const auto [wb, b] = heap.top();
        heap.pop();
        const int parent = static_cast<int>(nodes.size());
        nodes.push_back({wa + wb, -1});
        nodes[a].parent = parent;
        nodes[b].parent = parent;
        heap.push({wa + wb, parent});
    }

    std::vector<int> lengths(n);
    for (int i = 0; i < n; ++i) {
        int depth = 0;
        for (int p = nodes[i].parent; p != -1; p = nodes[p].parent)
            ++depth;
        lengths[i] = depth;
    }
    return lengths;
}

}  // namespace

VlcTable
VlcTable::from_weights(const std::vector<u64> &weights)
{
    HDVB_CHECK(!weights.empty());
    std::vector<int> lengths = huffman_lengths(weights);

    // Length-limit to kMaxLen with the JPEG Annex-K BITS adjustment:
    // repeatedly convert a pair of over-long codes into one code one bit
    // shorter plus a deepened shorter code. Preserves prefix-freeness.
    const int max_observed =
        *std::max_element(lengths.begin(), lengths.end());
    if (max_observed > kMaxLen) {
        std::vector<int> counts(max_observed + 1, 0);
        for (int len : lengths)
            ++counts[len];
        for (int i = max_observed; i > kMaxLen; --i) {
            while (counts[i] > 0) {
                int j = i - 2;
                while (j > 0 && counts[j] == 0)
                    --j;
                HDVB_CHECK(j > 0);
                counts[i] -= 2;
                counts[i - 1] += 1;
                counts[j + 1] += 2;
                counts[j] -= 1;
            }
        }
        // Reassign lengths: heaviest symbols get the shortest codes.
        std::vector<int> order(weights.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            if (weights[a] != weights[b])
                return weights[a] > weights[b];
            return a < b;
        });
        int len = 1;
        for (int idx : order) {
            while (len <= kMaxLen && counts[len] == 0)
                ++len;
            HDVB_CHECK(len <= kMaxLen);
            --counts[len];
            lengths[idx] = len;
        }
    }

    std::vector<u8> lens8(lengths.size());
    for (size_t i = 0; i < lengths.size(); ++i)
        lens8[i] = static_cast<u8>(lengths[i]);
    VlcTable table;
    table.build_from_lengths(lens8);
    return table;
}

VlcTable
VlcTable::from_lengths(const std::vector<u8> &lengths)
{
    VlcTable table;
    table.build_from_lengths(lengths);
    return table;
}

void
VlcTable::build_from_lengths(const std::vector<u8> &lengths)
{
    HDVB_CHECK(!lengths.empty());
    const int n = static_cast<int>(lengths.size());
    max_len_ = 0;
    u64 kraft = 0;  // in units of 2^-kMaxLen
    for (u8 len : lengths) {
        HDVB_CHECK(len >= 1 && len <= kMaxLen);
        max_len_ = std::max<int>(max_len_, len);
        kraft += 1ull << (kMaxLen - len);
    }
    HDVB_CHECK(kraft <= (1ull << kMaxLen));

    // Canonical assignment: sort by (length, symbol), codes increase.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (lengths[a] != lengths[b])
            return lengths[a] < lengths[b];
        return a < b;
    });

    enc_code_.assign(n, 0);
    enc_len_.assign(lengths.begin(), lengths.end());
    u32 code = 0;
    int prev_len = lengths[order[0]];
    for (int idx : order) {
        code <<= (lengths[idx] - prev_len);
        prev_len = lengths[idx];
        enc_code_[idx] = code;
        ++code;
    }

    // Full-window decode LUT: every max_len_-bit window whose prefix is
    // a code word maps to (symbol, length); others stay len 0 = invalid.
    lut_symbol_.assign(size_t{1} << max_len_, 0);
    lut_len_.assign(size_t{1} << max_len_, 0);
    for (int sym = 0; sym < n; ++sym) {
        const int len = enc_len_[sym];
        const u32 base = enc_code_[sym] << (max_len_ - len);
        const u32 span = 1u << (max_len_ - len);
        for (u32 i = 0; i < span; ++i) {
            HDVB_CHECK(lut_len_[base + i] == 0);  // prefix-free
            lut_symbol_[base + i] = static_cast<u16>(sym);
            lut_len_[base + i] = static_cast<u8>(len);
        }
    }
}

}  // namespace hdvb
