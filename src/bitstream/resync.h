/**
 * @file
 * Resynchronisation support for the error-resilient packet layout
 * (CodecConfig::error_resilience). A resilient picture packet is built
 * from byte-aligned segments:
 *
 *     escape(header bytes)
 *     { 00 00 01 <row>  escape(row payload) }   for each macroblock row
 *
 * Emulation-prevention escaping (H.264-style: after two zero bytes a
 * byte <= 0x03 is prefixed with 0x03) guarantees the 4-byte marker
 * cannot occur inside an escaped segment, so on a clean stream the
 * scan below recovers exactly the encoder's segment boundaries. On a
 * corrupted stream the scan is a best-effort recovery tool: decoders
 * filter the candidates (strictly increasing rows) and conceal rows
 * whose segment is missing or fails to parse.
 */
#ifndef HDVB_BITSTREAM_RESYNC_H
#define HDVB_BITSTREAM_RESYNC_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace hdvb {

/** Sentinel byte each resilient row payload ends with; a decoded row
 * whose trailing sentinel does not match is treated as corrupt even if
 * its entropy decode "succeeded" (the range coder rarely self-detects
 * garbage). */
inline constexpr u32 kRowSentinel = 0xA5;

/** Append @p size bytes of @p data to @p out with emulation-prevention
 * escaping: after two consecutive zero bytes, a byte <= 0x03 is
 * prefixed with an inserted 0x03. */
void escape_emulation(const u8 *data, size_t size, std::vector<u8> *out);

/** Undo escape_emulation over [data, data+size): drop a 0x03 that
 * follows two consecutive zero bytes. Best-effort on corrupt input. */
std::vector<u8> unescape_emulation(const u8 *data, size_t size);

/** Append the 4-byte resync marker 00 00 01 <row> (row < 256). */
void append_resync_marker(std::vector<u8> *out, int row);

/** One marker candidate found by scan_resync_markers. */
struct ResyncMarker {
    int row;     ///< Macroblock row claimed by the marker.
    size_t pos;  ///< Byte offset of the marker's first 00.
};

/**
 * Scan @p data for byte-aligned 00 00 01 RR candidates with
 * RR < @p max_rows. Scanning resumes 4 bytes after each hit, so a
 * marker's own bytes are never re-matched. Returns candidates in
 * stream order; callers impose the strictly-increasing-row filter.
 */
std::vector<ResyncMarker> scan_resync_markers(const std::vector<u8> &data,
                                              int max_rows);

}  // namespace hdvb

#endif  // HDVB_BITSTREAM_RESYNC_H
