/**
 * @file
 * MSB-first bit-oriented output buffer, the write side of every VLC-coded
 * bitstream in the benchmark (MPEG-2-class and MPEG-4-class codecs, plus
 * all fixed-length header fields).
 */
#ifndef HDVB_BITSTREAM_BIT_WRITER_H
#define HDVB_BITSTREAM_BIT_WRITER_H

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace hdvb {

/**
 * Accumulates bits most-significant-first into a growable byte buffer.
 *
 * The writer never fails: memory growth is the only resource it needs.
 * Writers are cheap to move and intended to be used per-picture.
 */
class BitWriter
{
  public:
    BitWriter() { bytes_.reserve(4096); }

    /**
     * Append the low @p n bits of @p value (0 <= n <= 32). Bits above
     * position n of @p value must be zero for n < 32.
     */
    void
    put_bits(u32 value, int n)
    {
        HDVB_DCHECK(n >= 0 && n <= 32);
        HDVB_DCHECK(n == 32 || (value >> n) == 0);
        acc_ = (acc_ << n) | value;
        acc_bits_ += n;
        while (acc_bits_ >= 8) {
            acc_bits_ -= 8;
            bytes_.push_back(static_cast<u8>(acc_ >> acc_bits_));
        }
    }

    /** Append a single bit. */
    void put_bit(int bit) { put_bits(static_cast<u32>(bit & 1), 1); }

    /** Pad with zero bits to the next byte boundary. */
    void
    byte_align()
    {
        if (acc_bits_ != 0)
            put_bits(0, 8 - acc_bits_);
    }

    /** Total number of bits written so far. */
    size_t bit_count() const { return bytes_.size() * 8 + acc_bits_; }

    /**
     * Finish the stream (byte-aligning it) and move the bytes out.
     * The writer is left empty and reusable — but the move surrenders
     * the buffer's capacity; persistent writers should prefer
     * finish_into().
     */
    std::vector<u8>
    finish()
    {
        byte_align();
        std::vector<u8> out = std::move(bytes_);
        bytes_.clear();
        acc_ = 0;
        acc_bits_ = 0;
        return out;
    }

    /**
     * Finish the stream into @p out (assign, not move), keeping this
     * writer's internal capacity for the next picture — the zero-
     * allocation steady-state path for per-encoder persistent writers.
     */
    void
    finish_into(std::vector<u8> *out)
    {
        byte_align();
        out->assign(bytes_.begin(), bytes_.end());
        clear();
    }

    /** Drop all buffered bits, keeping the byte buffer's capacity. */
    void
    clear()
    {
        bytes_.clear();
        acc_ = 0;
        acc_bits_ = 0;
    }

  private:
    std::vector<u8> bytes_;
    u64 acc_ = 0;
    int acc_bits_ = 0;
};

}  // namespace hdvb

#endif  // HDVB_BITSTREAM_BIT_WRITER_H
