/**
 * @file
 * MSB-first bit-oriented input cursor over a byte span.
 *
 * Error model: over-reading past the end of the buffer does not throw or
 * abort; it returns zero bits and latches an error flag. Decoders check
 * the flag at natural checkpoints (per macroblock row / per picture) and
 * surface Status::corrupt_stream. This keeps the per-bit hot path free
 * of branches on the result while still making truncated or corrupt
 * streams safe to feed in (tests exercise this).
 */
#ifndef HDVB_BITSTREAM_BIT_READER_H
#define HDVB_BITSTREAM_BIT_READER_H

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace hdvb {

/** Reads bits most-significant-first from a caller-owned byte buffer. */
class BitReader
{
  public:
    BitReader(const u8 *data, size_t size) : data_(data), size_(size) {}

    explicit BitReader(const std::vector<u8> &bytes)
        : BitReader(bytes.data(), bytes.size())
    {}

    /** Read @p n bits (0 <= n <= 32); zeros once exhausted. */
    u32
    get_bits(int n)
    {
        HDVB_DCHECK(n >= 0 && n <= 32);
        u32 out = 0;
        while (n > 0) {
            if (acc_bits_ == 0 && !refill()) {
                error_ = true;
                // Zero-fill the remainder. n can still be 32 here
                // (exhausted before the first take, out == 0), and a
                // 32-bit shift of a u32 is undefined — return 0
                // explicitly instead of `out << 32`.
                return n < 32 ? out << n : 0;
            }
            const int take = n < acc_bits_ ? n : acc_bits_;
            acc_bits_ -= take;
            out = (out << take) |
                  static_cast<u32>((acc_ >> acc_bits_) & ((1u << take) - 1));
            n -= take;
        }
        return out;
    }

    /** Read a single bit. */
    int get_bit() { return static_cast<int>(get_bits(1)); }

    /**
     * Look ahead up to 24 bits without consuming them; zero-padded past
     * the end of the stream (does not latch the error flag).
     */
    u32
    peek_bits(int n)
    {
        HDVB_DCHECK(n >= 0 && n <= 24);
        while (acc_bits_ < n && refill()) {}
        if (acc_bits_ >= n)
            return static_cast<u32>(acc_ >> (acc_bits_ - n)) &
                   ((1u << n) - 1);
        // Not enough data: pad with zeros on the right.
        const u32 avail =
            static_cast<u32>(acc_ & ((1ull << acc_bits_) - 1));
        return avail << (n - acc_bits_);
    }

    /** Discard @p n bits. */
    void skip_bits(int n) { (void)get_bits(n); }

    /** Advance to the next byte boundary. */
    void
    byte_align()
    {
        skip_bits(acc_bits_ % 8);
    }

    /** Bits consumed so far. */
    size_t bits_consumed() const { return pos_ * 8 - acc_bits_; }

    /** True once a read ran past the end of the buffer. */
    bool has_error() const { return error_; }

    /** Latch the error flag from outside (malformed syntax, e.g. an
     * overlong Exp-Golomb prefix that is not a truncation). */
    void set_error() { error_ = true; }

    /** True when every bit has been consumed (ignores alignment pad). */
    bool exhausted() const { return pos_ == size_ && acc_bits_ == 0; }

  private:
    bool
    refill()
    {
        if (pos_ >= size_)
            return false;
        acc_ = (acc_ << 8) | data_[pos_++];
        acc_bits_ += 8;
        return true;
    }

    const u8 *data_;
    size_t size_;
    size_t pos_ = 0;
    u64 acc_ = 0;
    int acc_bits_ = 0;
    bool error_ = false;
};

}  // namespace hdvb

#endif  // HDVB_BITSTREAM_BIT_READER_H
