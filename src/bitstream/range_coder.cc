#include "bitstream/range_coder.h"

// Range coder is fully inline; this translation unit anchors the library.
