/**
 * @file
 * Adaptive binary range coder (carry-less, LZMA-style renormalisation).
 *
 * This is the "CABAC-class" entropy coder of the H.264-class codec: all
 * syntax is binarised and coded with adaptive per-context probability
 * models, plus a bypass path for near-uniform bins (signs, suffixes).
 */
#ifndef HDVB_BITSTREAM_RANGE_CODER_H
#define HDVB_BITSTREAM_RANGE_CODER_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace hdvb {

/**
 * Adaptive probability model for one binary context. prob is the 11-bit
 * probability that the next bin is 0; it adapts with shift-5 updates
 * (the LZMA schedule, comparable to CABAC's state machine).
 */
struct BitModel {
    u16 prob = 1024;

    void reset() { prob = 1024; }
};

/** Encode side. Produces a byte vector via finish(). */
class RangeEncoder
{
  public:
    RangeEncoder() { bytes_.reserve(4096); }

    /** Encode one bin under an adaptive context. */
    void
    encode_bit(BitModel &model, int bit)
    {
        const u32 bound = (range_ >> 11) * model.prob;
        if (bit == 0) {
            range_ = bound;
            model.prob += (2048 - model.prob) >> 5;
        } else {
            low_ += bound;
            range_ -= bound;
            model.prob -= model.prob >> 5;
        }
        while (range_ < (1u << 24)) {
            range_ <<= 8;
            shift_low();
        }
    }

    /** Encode one bin at probability 1/2 without adaptation. */
    void
    encode_bypass(int bit)
    {
        range_ >>= 1;
        if (bit)
            low_ += range_;
        while (range_ < (1u << 24)) {
            range_ <<= 8;
            shift_low();
        }
    }

    /** Encode the low @p n bits of @p value, MSB first, in bypass. */
    void
    encode_bypass_bits(u32 value, int n)
    {
        for (int i = n - 1; i >= 0; --i)
            encode_bypass(static_cast<int>((value >> i) & 1));
    }

    /** Number of bytes emitted so far (approximate rate feedback). */
    size_t byte_count() const { return bytes_.size(); }

    /** Flush and move out the coded bytes; the encoder is spent. */
    std::vector<u8>
    finish()
    {
        for (int i = 0; i < 5; ++i)
            shift_low();
        return std::move(bytes_);
    }

    /**
     * Flush the coded bytes into @p out (assign, not move) and reset
     * to a fresh-stream state, keeping the internal buffer's capacity
     * — the zero-allocation steady-state path for per-encoder
     * persistent coders.
     */
    void
    finish_into(std::vector<u8> *out)
    {
        for (int i = 0; i < 5; ++i)
            shift_low();
        out->assign(bytes_.begin(), bytes_.end());
        reset();
    }

    /** Back to the initial coder state; buffer capacity is kept. */
    void
    reset()
    {
        bytes_.clear();
        low_ = 0;
        range_ = 0xFFFFFFFFu;
        cache_ = 0;
        cache_size_ = 1;
    }

  private:
    void
    shift_low()
    {
        if (static_cast<u32>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
            u8 out = cache_;
            const u8 carry = static_cast<u8>(low_ >> 32);
            do {
                bytes_.push_back(static_cast<u8>(out + carry));
                out = 0xFF;
            } while (--cache_size_ != 0);
            cache_ = static_cast<u8>(low_ >> 24);
        }
        ++cache_size_;
        low_ = (low_ << 8) & 0xFFFFFFFFull;
    }

    std::vector<u8> bytes_;
    u64 low_ = 0;
    u32 range_ = 0xFFFFFFFFu;
    u8 cache_ = 0;
    u64 cache_size_ = 1;
};

/**
 * Decode side. Mirrors RangeEncoder exactly; reading past the end of the
 * buffer feeds zero bytes and latches has_error() (corrupt streams are
 * safe to feed in, matching the BitReader error model).
 */
class RangeDecoder
{
  public:
    RangeDecoder(const u8 *data, size_t size) : data_(data), size_(size)
    {
        next_byte();  // leading zero byte emitted by the encoder
        for (int i = 0; i < 4; ++i)
            code_ = (code_ << 8) | next_byte();
    }

    explicit RangeDecoder(const std::vector<u8> &bytes)
        : RangeDecoder(bytes.data(), bytes.size())
    {}

    /** Decode one bin under an adaptive context. */
    int
    decode_bit(BitModel &model)
    {
        const u32 bound = (range_ >> 11) * model.prob;
        int bit;
        if (code_ < bound) {
            range_ = bound;
            model.prob += (2048 - model.prob) >> 5;
            bit = 0;
        } else {
            code_ -= bound;
            range_ -= bound;
            model.prob -= model.prob >> 5;
            bit = 1;
        }
        normalize();
        return bit;
    }

    /** Decode one bypass bin. */
    int
    decode_bypass()
    {
        range_ >>= 1;
        int bit = 0;
        if (code_ >= range_) {
            code_ -= range_;
            bit = 1;
        }
        normalize();
        return bit;
    }

    /** Decode @p n bypass bins MSB-first into an unsigned value. */
    u32
    decode_bypass_bits(int n)
    {
        u32 value = 0;
        for (int i = 0; i < n; ++i)
            value = (value << 1) | static_cast<u32>(decode_bypass());
        return value;
    }

    /** True once the decoder has consumed past the end of the buffer. */
    bool has_error() const { return error_; }

  private:
    u8
    next_byte()
    {
        if (pos_ < size_)
            return data_[pos_++];
        error_ = true;
        return 0;
    }

    void
    normalize()
    {
        while (range_ < (1u << 24)) {
            range_ <<= 8;
            code_ = (code_ << 8) | next_byte();
        }
    }

    const u8 *data_;
    size_t size_;
    size_t pos_ = 0;
    u32 code_ = 0;
    u32 range_ = 0xFFFFFFFFu;
    bool error_ = false;
};

}  // namespace hdvb

#endif  // HDVB_BITSTREAM_RANGE_CODER_H
