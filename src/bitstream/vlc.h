/**
 * @file
 * Canonical-Huffman variable-length-code tables.
 *
 * The MPEG-2 and MPEG-4 standards entropy-code run/level pairs, MB types
 * and coded-block patterns with fixed VLC tables. Our MPEG-class codecs
 * use tables of the same class, built at start-up from a designed weight
 * distribution: a Huffman builder (with JPEG-Annex-K length limiting to
 * 16 bits) guarantees the tables are prefix-free and decodable, which a
 * hand-written table could silently fail to be.
 */
#ifndef HDVB_BITSTREAM_VLC_H
#define HDVB_BITSTREAM_VLC_H

#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "common/types.h"

namespace hdvb {

/**
 * An immutable prefix code over symbols 0..size-1 with encode and
 * LUT-based decode. Maximum code length is 16 bits.
 */
class VlcTable
{
  public:
    static constexpr int kMaxLen = 16;

    /** Empty table; assign from from_weights()/from_lengths() before
     * use. */
    VlcTable() = default;

    /**
     * Build a length-limited Huffman code for the given symbol weights.
     * Weights must be non-empty; zero weights are treated as weight 1 so
     * every symbol stays encodable.
     */
    static VlcTable from_weights(const std::vector<u64> &weights);

    /**
     * Build a canonical code directly from per-symbol code lengths
     * (1..16). Aborts (library bug) if the lengths overflow the Kraft
     * inequality.
     */
    static VlcTable from_lengths(const std::vector<u8> &lengths);

    /** Append the code for @p symbol. */
    void
    encode(BitWriter &bw, int symbol) const
    {
        HDVB_DCHECK(symbol >= 0 &&
                    symbol < static_cast<int>(enc_len_.size()));
        bw.put_bits(enc_code_[symbol], enc_len_[symbol]);
    }

    /**
     * Decode one symbol. Returns -1 when the upcoming bits match no
     * code word or the stream is exhausted.
     */
    int
    decode(BitReader &br) const
    {
        const u32 window = br.peek_bits(max_len_);
        const u8 len = lut_len_[window];
        if (len == 0)
            return -1;
        br.skip_bits(len);
        if (br.has_error())
            return -1;
        return lut_symbol_[window];
    }

    /** Code length in bits for @p symbol (rate estimation). */
    int bits(int symbol) const { return enc_len_[symbol]; }

    /** Number of symbols in the alphabet. */
    int size() const { return static_cast<int>(enc_len_.size()); }

  private:
    void build_from_lengths(const std::vector<u8> &lengths);

    std::vector<u32> enc_code_;
    std::vector<u8> enc_len_;
    std::vector<u16> lut_symbol_;
    std::vector<u8> lut_len_;
    int max_len_ = 0;
};

}  // namespace hdvb

#endif  // HDVB_BITSTREAM_VLC_H
