/**
 * @file
 * Double-precision 8x8 DCT-II / IDCT reference implementations, used by
 * the test suite to bound the error of the fixed-point transforms
 * (IEEE-1180 style accuracy checks). Not used by the codecs.
 */
#ifndef HDVB_DSP_DCT_REF_H
#define HDVB_DSP_DCT_REF_H

#include "common/types.h"

namespace hdvb {

/** Orthonormal forward 8x8 DCT-II, row-major in/out. */
void fdct8x8_ref(const double in[64], double out[64]);

/** Orthonormal inverse 8x8 DCT-II, row-major in/out. */
void idct8x8_ref(const double in[64], double out[64]);

}  // namespace hdvb

#endif  // HDVB_DSP_DCT_REF_H
