#include "dsp/transform4x4.h"

namespace hdvb {

namespace {

/** 1-D forward core transform on (a, b, c, d). */
inline void
fwd4(Coeff &a, Coeff &b, Coeff &c, Coeff &d)
{
    const int s0 = a + d;
    const int s1 = b + c;
    const int d0 = a - d;
    const int d1 = b - c;
    a = static_cast<Coeff>(s0 + s1);
    c = static_cast<Coeff>(s0 - s1);
    b = static_cast<Coeff>(2 * d0 + d1);
    d = static_cast<Coeff>(d0 - 2 * d1);
}

/** 1-D inverse core transform on (a, b, c, d). */
inline void
inv4(int &a, int &b, int &c, int &d)
{
    const int e0 = a + c;
    const int e1 = a - c;
    const int e2 = (b >> 1) - d;
    const int e3 = b + (d >> 1);
    a = e0 + e3;
    d = e0 - e3;
    b = e1 + e2;
    c = e1 - e2;
}

}  // namespace

void
h264_fwd4x4(Coeff blk[16])
{
    for (int i = 0; i < 4; ++i)
        fwd4(blk[i * 4], blk[i * 4 + 1], blk[i * 4 + 2], blk[i * 4 + 3]);
    for (int i = 0; i < 4; ++i)
        fwd4(blk[i], blk[4 + i], blk[8 + i], blk[12 + i]);
}

void
h264_inv4x4(Coeff blk[16])
{
    int t[16];
    for (int i = 0; i < 16; ++i)
        t[i] = blk[i];
    for (int i = 0; i < 4; ++i)
        inv4(t[i * 4], t[i * 4 + 1], t[i * 4 + 2], t[i * 4 + 3]);
    for (int i = 0; i < 4; ++i)
        inv4(t[i], t[4 + i], t[8 + i], t[12 + i]);
    for (int i = 0; i < 16; ++i)
        blk[i] = static_cast<Coeff>(clamp((t[i] + 32) >> 6,
                                          -32768, 32767));
}

namespace {

inline void
had4(s32 &a, s32 &b, s32 &c, s32 &d)
{
    const s32 s0 = a + d;
    const s32 s1 = b + c;
    const s32 d0 = a - d;
    const s32 d1 = b - c;
    a = s0 + s1;
    c = s0 - s1;
    b = d0 + d1;
    d = d0 - d1;
}

}  // namespace

void
hadamard4x4_fwd(s32 dc[16])
{
    for (int i = 0; i < 4; ++i)
        had4(dc[i * 4], dc[i * 4 + 1], dc[i * 4 + 2], dc[i * 4 + 3]);
    for (int i = 0; i < 4; ++i)
        had4(dc[i], dc[4 + i], dc[8 + i], dc[12 + i]);
}

void
hadamard4x4_inv(s32 dc[16])
{
    hadamard4x4_fwd(dc);  // the Hadamard transform is self-inverse
}

}  // namespace hdvb
