/**
 * @file
 * The H.264 4x4 integer transform family: the exact forward/inverse core
 * transform of ISO/IEC 14496-10 (bit-exact, shift-add only) and the 4x4
 * Hadamard used for Intra16 luma DC coefficients.
 *
 * Scaling contract (matching the standard): fwd4x4 has a DC gain of 16;
 * dequantisation restores coefficients at 4x scale; inv4x4 applies the
 * final (x + 32) >> 6 descale, so fwd -> quant -> dequant -> inv is a
 * unit-gain round trip.
 */
#ifndef HDVB_DSP_TRANSFORM4X4_H
#define HDVB_DSP_TRANSFORM4X4_H

#include "common/types.h"

namespace hdvb {

/** Forward 4x4 core transform, in place, row-major blk[16]. */
void h264_fwd4x4(Coeff blk[16]);

/** Inverse 4x4 core transform with final (x + 32) >> 6, in place. */
void h264_inv4x4(Coeff blk[16]);

/** Forward 4x4 Hadamard on 32-bit DC values, in place. */
void hadamard4x4_fwd(s32 dc[16]);

/** Inverse 4x4 Hadamard (same butterflies), in place; the caller
 * applies the (x + 8) >> 4 normalisation. */
void hadamard4x4_inv(s32 dc[16]);

}  // namespace hdvb

#endif  // HDVB_DSP_TRANSFORM4X4_H
