#include "dsp/approx.h"

#include "simd/dct_matrix.h"

namespace hdvb {

namespace {

/** Saturate to int16, matching the full transform's pack semantics. */
inline Coeff
sat16(s32 v)
{
    return static_cast<Coeff>(clamp<s32>(v, -32768, 32767));
}

}  // namespace

void
fdct8x8_low4(Coeff blk[64])
{
    Coeff tmp[32];  // vertical frequencies 0..3, all 8 columns
    // Column pass: only the 4 lowest vertical frequencies. Identical
    // arithmetic to the exact transform's first pass for these rows.
    for (int k = 0; k < 4; ++k) {
        for (int x = 0; x < 8; ++x) {
            s32 acc = 0;
            for (int n = 0; n < 8; ++n)
                acc += kDctMatrix[k][n] * blk[n * 8 + x];
            tmp[k * 8 + x] = sat16(
                (acc + (1 << (kDctPass1Shift - 1))) >> kDctPass1Shift);
        }
    }
    // Row pass over the surviving rows: the 4 lowest horizontal
    // frequencies; everything else in the block becomes zero.
    for (int y = 0; y < 4; ++y) {
        Coeff row[4];
        for (int k = 0; k < 4; ++k) {
            s32 acc = 0;
            for (int n = 0; n < 8; ++n)
                acc += kDctMatrix[k][n] * tmp[y * 8 + n];
            row[k] = sat16(
                (acc + (1 << (kDctPass2Shift - 1))) >> kDctPass2Shift);
        }
        for (int x = 0; x < 4; ++x)
            blk[y * 8 + x] = row[x];
        for (int x = 4; x < 8; ++x)
            blk[y * 8 + x] = 0;
    }
    for (int i = 32; i < 64; ++i)
        blk[i] = 0;
}

}  // namespace hdvb
