/**
 * @file
 * Shared helpers for the approximate-computing encoder tier
 * (CodecConfig::approx >= 1): quantiser-aware dead-zone thresholds
 * that let encoders skip the forward transform for near-zero residual
 * blocks, and a low-precision forward DCT for the top level.
 *
 * Everything here is deliberately scalar and deterministic: approx
 * decisions must depend only on pixel data and the configuration, so
 * an approximated stream is invariant to SIMD tier and thread count.
 */
#ifndef HDVB_DSP_APPROX_H
#define HDVB_DSP_APPROX_H

#include "common/types.h"

namespace hdvb {

/**
 * Per-8x8-block SAD dead zone for the MPEG-class encoders: residual
 * blocks whose prediction SAD is below this are coded as all-zero
 * (cbp bit clear) without running fdct + quant. 0 at approx level 0
 * (no shortcut); doubles per level above 1. Scales with the quantiser
 * step (step = W * qscale >> step_shift, flat inter matrix W = 16),
 * so a coarser quantiser — which would have zeroed the block anyway —
 * widens the zone.
 */
inline int
mpeg_dead_zone_sad(int qscale, int step_shift, int approx)
{
    if (approx < 1)
        return 0;
    // ~0.5 grey levels per sample per quantiser step at level 1.
    return ((qscale * 96) >> step_shift) << (approx - 1);
}

/**
 * Per-4x4-block SAD dead zone for the H.264-class encoder; same
 * contract as mpeg_dead_zone_sad. The step doubles every 6 QP, and so
 * does the zone.
 */
inline int
h264_dead_zone_sad(int qp, int approx)
{
    if (approx < 1)
        return 0;
    return (1 << (qp / 6)) << (approx - 1);
}

/**
 * Low-precision forward 8x8 DCT (approx level 3): computes only the
 * top-left 4x4 output coefficients — the lowest horizontal and
 * vertical frequencies — and zeroes the rest, at ~3/8 of the exact
 * transform's multiplies. The surviving coefficients are bit-exact
 * with the full fixed-point transform (same basis, rounding, and
 * saturation), so dequant/IDCT reconstruction needs no changes.
 * Always scalar: the output must not depend on the SIMD tier.
 */
void fdct8x8_low4(Coeff blk[64]);

}  // namespace hdvb

#endif  // HDVB_DSP_APPROX_H
