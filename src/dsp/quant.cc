#include "dsp/quant.h"

#include <cmath>

#include "common/check.h"

namespace hdvb {

// The MPEG-2 default intra weighting matrix (ISO/IEC 13818-2 defaults).
const QuantMatrix8x8 kMpegIntraMatrix = {{
     8, 16, 19, 22, 26, 27, 29, 34,
    16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38,
    22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48,
    26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69,
    27, 29, 35, 38, 46, 56, 69, 83,
}};

const QuantMatrix8x8 kMpegInterMatrix = {{
    16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16,
}};

MpegQuantizer::MpegQuantizer(const QuantMatrix8x8 &matrix, int qscale,
                             int dead_zone, int step_shift)
{
    HDVB_CHECK(qscale >= 1 && qscale <= 31);
    HDVB_CHECK(dead_zone >= 0 && dead_zone <= 32);
    HDVB_CHECK(step_shift == 3 || step_shift == 4);
    for (int i = 0; i < 64; ++i) {
        int s = (matrix.w[i] * qscale) >> step_shift;
        if (s < 2)
            s = 2;
        step_[i] = s;
        offset_[i] = (s * dead_zone) >> 6;
    }
}

int
MpegQuantizer::quantize(Coeff blk[64]) const
{
    int nonzero = 0;
    for (int i = 0; i < 64; ++i) {
        const int c = blk[i];
        const int mag = (c < 0 ? -c : c) + offset_[i];
        int level = mag / step_[i];
        if (level > kCoeffClamp)
            level = kCoeffClamp;  // keeps the IDCT input bounded
        blk[i] = static_cast<Coeff>(c < 0 ? -level : level);
        nonzero += level != 0;
    }
    return nonzero;
}

void
MpegQuantizer::dequantize(Coeff blk[64]) const
{
    for (int i = 0; i < 64; ++i) {
        const int level = blk[i];
        if (level == 0)
            continue;
        int c = level * step_[i];
        c = clamp(c, -kCoeffClamp, kCoeffClamp);
        blk[i] = static_cast<Coeff>(c);
    }
}

namespace {

// H.264 MF / V tables (ISO/IEC 14496-10), indexed [qp % 6][class],
// class 0 = positions with both coordinates even, class 1 = both odd,
// class 2 = mixed.
const int kMf[6][3] = {
    {13107, 5243, 8066},
    {11916, 4660, 7490},
    {10082, 4194, 6554},
    { 9362, 3647, 5825},
    { 8192, 3355, 5243},
    { 7282, 2893, 4559},
};

const int kV[6][3] = {
    {10, 16, 13},
    {11, 18, 14},
    {13, 20, 16},
    {14, 23, 18},
    {16, 25, 20},
    {18, 29, 23},
};

inline int
position_class(int i)
{
    const int row = i >> 2;
    const int col = i & 3;
    const bool row_even = (row & 1) == 0;
    const bool col_even = (col & 1) == 0;
    if (row_even && col_even)
        return 0;
    if (!row_even && !col_even)
        return 1;
    return 2;
}

}  // namespace

H264Quantizer::H264Quantizer(int qp, bool intra) : qp_(qp)
{
    HDVB_CHECK(qp >= 0 && qp < kH264QpCount);
    const int rem = qp % 6;
    const int per = qp / 6;
    shift_ = 15 + per;
    // Standard rounding offsets: f = 2^shift / 3 (intra), / 6 (inter).
    offset_ = (1 << shift_) / (intra ? 3 : 6);
    for (int i = 0; i < 16; ++i) {
        const int cls = position_class(i);
        mf_[i] = kMf[rem][cls];
        v_[i] = kV[rem][cls] << per;
    }
}

int
H264Quantizer::quantize4x4(Coeff blk[16]) const
{
    int nonzero = 0;
    for (int i = 0; i < 16; ++i) {
        const int c = blk[i];
        const int mag = c < 0 ? -c : c;
        int level =
            static_cast<int>((static_cast<s64>(mag) * mf_[i] + offset_)
                             >> shift_);
        if (level > kCoeffClamp)
            level = kCoeffClamp;
        blk[i] = static_cast<Coeff>(c < 0 ? -level : level);
        nonzero += level != 0;
    }
    return nonzero;
}

void
H264Quantizer::dequantize4x4(Coeff blk[16]) const
{
    for (int i = 0; i < 16; ++i) {
        if (blk[i] == 0)
            continue;
        const int c = clamp(blk[i] * v_[i], -0x8000 * 4, 0x7FFF * 4);
        // The inverse transform descales by 6 bits; keep headroom.
        blk[i] = static_cast<Coeff>(clamp(c, -32768, 32767));
    }
}

Coeff
H264Quantizer::quantize_dc(s32 value) const
{
    const s32 c = value;
    const s32 mag = c < 0 ? -c : c;
    int level =
        static_cast<int>((static_cast<s64>(mag) * mf_[0] + 2 * offset_)
                         >> (shift_ + 1));
    if (level > kCoeffClamp)
        level = kCoeffClamp;
    return static_cast<Coeff>(c < 0 ? -level : level);
}

s32
H264Quantizer::dequantize_dc(Coeff level) const
{
    return static_cast<s32>(level) * v_[0] * 2;
}

int
h264_qp_from_mpeg(int mpeg_qscale)
{
    HDVB_CHECK(mpeg_qscale >= 1 && mpeg_qscale <= 31);
    const double qp = 12.0 + 6.0 * std::log2(static_cast<double>(
                                       mpeg_qscale));
    const int rounded = static_cast<int>(std::lround(qp));
    return clamp(rounded, 0, kH264QpCount - 1);
}

}  // namespace hdvb
