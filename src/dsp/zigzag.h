/**
 * @file
 * Coefficient scan orders. Zig-zag scans order transform coefficients by
 * increasing spatial frequency so that run-length entropy coding sees
 * long zero runs at the tail.
 */
#ifndef HDVB_DSP_ZIGZAG_H
#define HDVB_DSP_ZIGZAG_H

#include "common/types.h"

namespace hdvb {

/** Classic 8x8 zig-zag scan (MPEG-2 / MPEG-4 progressive scan). */
extern const u8 kZigzag8x8[64];

/** 4x4 zig-zag scan (H.264 frame coding). */
extern const u8 kZigzag4x4[16];

/** Inverse of kZigzag8x8: raster position -> scan position. */
extern const u8 kZigzag8x8Inv[64];

}  // namespace hdvb

#endif  // HDVB_DSP_ZIGZAG_H
