#include "dsp/dct_ref.h"

#include <cmath>

namespace hdvb {

namespace {

struct Basis {
    double m[8][8];

    Basis()
    {
        const double pi = std::acos(-1.0);
        for (int k = 0; k < 8; ++k) {
            const double s =
                k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
            for (int n = 0; n < 8; ++n)
                m[k][n] = s * std::cos((2 * n + 1) * k * pi / 16.0);
        }
    }
};

const Basis g_basis;

}  // namespace

void
fdct8x8_ref(const double in[64], double out[64])
{
    double tmp[64];
    // Columns.
    for (int k = 0; k < 8; ++k) {
        for (int x = 0; x < 8; ++x) {
            double acc = 0.0;
            for (int n = 0; n < 8; ++n)
                acc += g_basis.m[k][n] * in[n * 8 + x];
            tmp[k * 8 + x] = acc;
        }
    }
    // Rows.
    for (int y = 0; y < 8; ++y) {
        for (int k = 0; k < 8; ++k) {
            double acc = 0.0;
            for (int n = 0; n < 8; ++n)
                acc += g_basis.m[k][n] * tmp[y * 8 + n];
            out[y * 8 + k] = acc;
        }
    }
}

void
idct8x8_ref(const double in[64], double out[64])
{
    double tmp[64];
    for (int n = 0; n < 8; ++n) {
        for (int x = 0; x < 8; ++x) {
            double acc = 0.0;
            for (int k = 0; k < 8; ++k)
                acc += g_basis.m[k][n] * in[k * 8 + x];
            tmp[n * 8 + x] = acc;
        }
    }
    for (int y = 0; y < 8; ++y) {
        for (int n = 0; n < 8; ++n) {
            double acc = 0.0;
            for (int k = 0; k < 8; ++k)
                acc += g_basis.m[k][n] * tmp[y * 8 + k];
            out[y * 8 + n] = acc;
        }
    }
}

}  // namespace hdvb
