/**
 * @file
 * Quantisation for the three codec generations.
 *
 * MPEG-class (8x8 DCT coefficients): a perceptual weighting matrix and a
 * linear quantiser_scale (the paper's `vqscale` / `fixed_quant`, range
 * 1..31), with a codec-tunable dead zone and step granularity. The two
 * MPEG-era codecs interpret the same nominal quantiser differently —
 * MPEG-2's step at qscale q is W*q/16 while the H.263/MPEG-4 family uses
 * W*q/8 (twice as coarse) — which is why the paper's Table V shows
 * MPEG-2 at ~1 dB higher PSNR and 2-3x the bitrate of MPEG-4 for the
 * same "QP 5". The step_shift parameter models exactly this.
 *
 * H.264-class (4x4 integer-transform coefficients): the standard's exact
 * MF/V multiplier tables with QP 0..51, where the quantiser step doubles
 * every 6 QP. Equation 1 of the paper maps between the two QP scales.
 */
#ifndef HDVB_DSP_QUANT_H
#define HDVB_DSP_QUANT_H

#include "common/types.h"

namespace hdvb {

/** Maximum magnitude fed back into the 8x8 IDCT (range safety). */
inline constexpr int kCoeffClamp = 2047;

/** Per-coefficient weighting matrix for the 8x8 MPEG-class quantiser. */
struct QuantMatrix8x8 {
    u8 w[64];
};

/** MPEG default intra matrix (stronger weighting at high frequency). */
extern const QuantMatrix8x8 kMpegIntraMatrix;
/** MPEG default inter (non-intra) matrix: flat 16. */
extern const QuantMatrix8x8 kMpegInterMatrix;

/**
 * MPEG-class 8x8 quantiser.
 *
 * step(i) = max(2, (w[i] * qscale) >> step_shift); forward quantisation
 * adds (step * dead_zone) >> 6 before dividing, so dead_zone = 32 is
 * round-to-nearest and 0 is full truncation.
 */
class MpegQuantizer
{
  public:
    /**
     * @param matrix weighting matrix
     * @param qscale quantiser scale, 1..31
     * @param dead_zone rounding offset in 1/64 of a step (0..32)
     * @param step_shift 4 for MPEG-2 semantics (step = W*q/16),
     *        3 for H.263/MPEG-4 semantics (step = W*q/8)
     */
    MpegQuantizer(const QuantMatrix8x8 &matrix, int qscale, int dead_zone,
                  int step_shift = 3);

    /** Quantise blk[64] in place; returns the count of non-zero
     * levels. */
    int quantize(Coeff blk[64]) const;

    /** Dequantise levels in place back to coefficient magnitudes. */
    void dequantize(Coeff blk[64]) const;

    /** Quantiser step for coefficient position @p i. */
    int step(int i) const { return step_[i]; }

  private:
    int step_[64];
    int offset_[64];
};

/** Number of distinct QP values in the H.264-class scale. */
inline constexpr int kH264QpCount = 52;

/**
 * H.264-class 4x4 quantiser using the standard MF (forward) and V
 * (dequant) tables; positions fall into three classes by transform gain.
 */
class H264Quantizer
{
  public:
    /**
     * @param qp 0..51
     * @param intra selects the wider intra rounding offset (1/3 vs 1/6)
     */
    H264Quantizer(int qp, bool intra);

    /** Quantise a 4x4 coefficient block in place; returns nonzero
     * count. */
    int quantize4x4(Coeff blk[16]) const;

    /** Dequantise a 4x4 level block in place. */
    void dequantize4x4(Coeff blk[16]) const;

    /**
     * Quantise a single Hadamard-domain DC value (the Intra16 path uses
     * class-0 scale with an extra ÷2, as in the standard). Values are
     * 32-bit: the 4x4 DC Hadamard exceeds int16 range.
     */
    Coeff quantize_dc(s32 value) const;
    s32 dequantize_dc(Coeff level) const;

    int qp() const { return qp_; }

  private:
    int qp_;
    int shift_;     ///< 15 + qp/6
    int offset_;    ///< rounding offset, pre-shifted
    int mf_[16];    ///< per-position forward multiplier
    int v_[16];     ///< per-position dequant multiplier << (qp/6)
};

/**
 * Equation 1 of the paper: the empirical QP equivalence
 * H264_QP = 12 + 6 * log2(MPEG_QP), rounded to the nearest integer.
 */
int h264_qp_from_mpeg(int mpeg_qscale);

}  // namespace hdvb

#endif  // HDVB_DSP_QUANT_H
