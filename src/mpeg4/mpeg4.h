/**
 * @file
 * The MPEG-4-ASP-class codec: 8x8 DCT with quarter-sample motion
 * compensation (`qpel`), four-MV macroblocks, median motion-vector
 * prediction, EPZS motion estimation and a tuned quantiser dead zone —
 * the Advanced-Simple-Profile tool set that buys MPEG-4 its ~35 %
 * bitrate advantage over MPEG-2 in the paper's Table V.
 *
 * Benchmark role (paper Table II): stands in for the Xvid encoder and
 * decoder.
 */
#ifndef HDVB_MPEG4_MPEG4_H
#define HDVB_MPEG4_MPEG4_H

#include <memory>

#include "codec/codec.h"

namespace hdvb {

/** Create an MPEG-4-class encoder; config must validate. */
std::unique_ptr<VideoEncoder> create_mpeg4_encoder(
    const CodecConfig &config);

/** Create an MPEG-4-class decoder. */
std::unique_ptr<VideoDecoder> create_mpeg4_decoder(
    const CodecConfig &config);

namespace mpeg4 {

/** P-picture macroblock modes (ue-coded). */
enum PMbType { kPInter16 = 0, kPInter4v = 1, kPIntra = 2 };

/** B-picture macroblock modes (ue-coded). */
enum BMbType { kBBi = 0, kBFwd = 1, kBBwd = 2, kBIntra = 3 };

inline constexpr int kDcPredReset = 128;
inline constexpr int kDcStep = 8;

}  // namespace mpeg4

}  // namespace hdvb

#endif  // HDVB_MPEG4_MPEG4_H
