/**
 * @file
 * MPEG-4-ASP-class decoder: mirror of the encoder syntax (quarter-pel
 * MC, 4MV, median MV prediction).
 */
#include "mpeg4/mpeg4.h"

#include <cstring>
#include <memory>
#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/exp_golomb.h"
#include "bitstream/resync.h"
#include "codec/conceal.h"
#include "codec/mpeg_block.h"
#include "codec/run_level.h"
#include "codec/side_info.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "dsp/quant.h"
#include "mc/mc.h"
#include "me/me.h"

namespace hdvb {

namespace {

using mpeg4::kDcPredReset;
using mpeg4::kDcStep;

MotionVector
chroma_mv_from_4mv(const MotionVector mv[4])
{
    const int sx = mv[0].x + mv[1].x + mv[2].x + mv[3].x;
    const int sy = mv[0].y + mv[1].y + mv[2].y + mv[3].y;
    return {static_cast<s16>(div_round(sx, 8)),
            static_cast<s16>(div_round(sy, 8))};
}

class Mpeg4Decoder final : public DecoderBase
{
  public:
    explicit Mpeg4Decoder(const CodecConfig &cfg)
        : DecoderBase(cfg),
          dsp_(get_dsp(cfg.simd)),
          intra_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg4Intra)),
          inter_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg4Inter)),
          mb_w_(cfg.width / 16),
          mb_h_(cfg.height / 16),
          mv_grid_(static_cast<size_t>(mb_w_) * mb_h_),
          pool_(cfg.threads > 1
                    ? std::make_unique<ThreadPool>(cfg.threads)
                    : nullptr)
    {
    }

    const char *name() const override { return "mpeg4"; }

  protected:
    Status decode_picture(const Packet &packet, Frame *out) override;

  private:
    struct MbState {
        BitReader *br;
        Frame *frame;
        PictureType type;
        const MpegQuantizer *intra_quant;
        const MpegQuantizer *inter_quant;
        int mbx;
        int mby;
        int dc_pred[3];
        MotionVector left_fwd;
        MotionVector left_bwd;
        /** Side-info slot for the current MB (serial path only). */
        MbSideInfo *rec = nullptr;
    };

    bool decode_intra_mb(MbState &st);
    bool decode_p_inter_mb(MbState &st, bool four);
    bool decode_b_inter_mb(MbState &st, int mode);
    void recon_skip_mb(Frame *frame, PictureType type, int mbx, int mby);
    Status decode_picture_resilient(const Packet &packet, Frame *out);
    bool decode_resilient_row(MbState &st, const std::vector<u8> &bytes,
                              int mby, int *bad_from);
    void conceal_row(Frame *out, PictureType type, int from, int mby);
    void recon_inter_mb(MbState &st, const Frame &fwd_ref,
                        const Frame *bwd_ref, const MotionVector *fwd,
                        bool four, MotionVector bwd, int cbp,
                        Coeff blocks[6][64]);
    MotionVector median_pred(int mbx, int mby) const;
    MotionVector clamp_mv(MotionVector mv, int mbx, int mby,
                          int block) const;
    bool read_blocks(MbState &st, int *cbp, Coeff blocks[6][64]);

    const Dsp &dsp_;
    const RunLevelCoder &intra_rl_;
    const RunLevelCoder &inter_rl_;
    int mb_w_;
    int mb_h_;

    Frame prev_anchor_;
    Frame last_anchor_;
    std::vector<MotionVector> mv_grid_;
    std::unique_ptr<ThreadPool> pool_;  ///< row pool (threads > 1)
};

MotionVector
Mpeg4Decoder::median_pred(int mbx, int mby) const
{
    const MotionVector zero{};
    const MotionVector a =
        mbx > 0 ? mv_grid_[mby * mb_w_ + mbx - 1] : zero;
    // Matches the encoder: resilient rows predict from the left only.
    if (mby == 0 || config().error_resilience)
        return a;
    const MotionVector b = mv_grid_[(mby - 1) * mb_w_ + mbx];
    const MotionVector c = mbx + 1 < mb_w_
                               ? mv_grid_[(mby - 1) * mb_w_ + mbx + 1]
                               : zero;
    return {median3(a.x, b.x, c.x), median3(a.y, b.y, c.y)};
}

MotionVector
Mpeg4Decoder::clamp_mv(MotionVector mv, int mbx, int mby, int block) const
{
    // Quarter-sample units; block < 0 means the whole 16x16.
    const int size = block < 0 ? 16 : 8;
    const int x0 = mbx * 16 + (block > 0 ? (block & 1) * 8 : 0);
    const int y0 = mby * 16 + (block > 0 ? (block >> 1) * 8 : 0);
    const int margin = kMeMargin + 4;
    const int min_x = 4 * (-margin - x0);
    const int max_x = 4 * (config().width + margin - x0 - size);
    const int min_y = 4 * (-margin - y0);
    const int max_y = 4 * (config().height + margin - y0 - size);
    return {static_cast<s16>(clamp<int>(mv.x, min_x, max_x)),
            static_cast<s16>(clamp<int>(mv.y, min_y, max_y))};
}

bool
Mpeg4Decoder::read_blocks(MbState &st, int *cbp, Coeff blocks[6][64])
{
    BitReader &br = *st.br;
    *cbp = static_cast<int>(br.get_bits(6));
    if (br.has_error())
        return false;
    for (int b = 0; b < 6; ++b) {
        if (*cbp & (1 << b)) {
            std::memset(blocks[b], 0, sizeof(blocks[b]));
            if (!inter_rl_.decode_block(br, blocks[b], 0))
                return false;
        }
    }
    return true;
}

bool
Mpeg4Decoder::decode_intra_mb(MbState &st)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        Plane &plane = st.frame->plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : st.mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : st.mby * 8;

        const int dc_level = st.dc_pred[comp] + read_se(*st.br);
        if (dc_level < 0 || dc_level > 255 || st.br->has_error())
            return false;
        st.dc_pred[comp] = dc_level;

        Coeff blk[64] = {};
        if (!intra_rl_.decode_block(*st.br, blk, 1))
            return false;

        Pixel *dst = plane.row(y) + x;
        zero_block8(dst, plane.stride());
        mpeg_recon_block(blk, *st.intra_quant, dc_level * kDcStep, dst,
                         plane.stride(), dsp_);
    }
    st.left_fwd = st.left_bwd = MotionVector{};
    mv_grid_[st.mby * mb_w_ + st.mbx] = MotionVector{};
    if (st.rec != nullptr)
        st.rec->mode = MbSideInfo::kIntra;
    return true;
}

void
Mpeg4Decoder::recon_inter_mb(MbState &st, const Frame &fwd_ref,
                             const Frame *bwd_ref,
                             const MotionVector *fwd, bool four,
                             MotionVector bwd, int cbp,
                             Coeff blocks[6][64])
{
    Pixel luma[16 * 16], cb[8 * 8], cr[8 * 8];
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    const int cx = st.mbx * 8;
    const int cy = st.mby * 8;

    if (four) {
        for (int b = 0; b < 4; ++b) {
            mc_qpel_tap(fwd_ref.luma(), lx + (b & 1) * 8,
                        ly + (b >> 1) * 8, fwd[b],
                        luma + (b >> 1) * 8 * 16 + (b & 1) * 8, 16, 8,
                        8, dsp_);
        }
    } else {
        mc_qpel_tap(fwd_ref.luma(), lx, ly, fwd[0], luma, 16, 16, 16,
                    dsp_);
    }
    const MotionVector cmv = four ? chroma_mv_from_4mv(fwd)
                                  : chroma_mv_from_qpel(fwd[0]);
    mc_qpel_bilin(fwd_ref.cb(), cx, cy, cmv, cb, 8, 8, 8, dsp_);
    mc_qpel_bilin(fwd_ref.cr(), cx, cy, cmv, cr, 8, 8, 8, dsp_);

    if (bwd_ref != nullptr) {
        Pixel bl[16 * 16], bcb[8 * 8], bcr[8 * 8];
        mc_qpel_tap(bwd_ref->luma(), lx, ly, bwd, bl, 16, 16, 16,
                    dsp_);
        const MotionVector bcv = chroma_mv_from_qpel(bwd);
        mc_qpel_bilin(bwd_ref->cb(), cx, cy, bcv, bcb, 8, 8, 8, dsp_);
        mc_qpel_bilin(bwd_ref->cr(), cx, cy, bcv, bcr, 8, 8, 8, dsp_);
        dsp_.avg_rect(luma, 16, luma, 16, bl, 16, 16, 16);
        dsp_.avg_rect(cb, 8, cb, 8, bcb, 8, 8, 8);
        dsp_.avg_rect(cr, 8, cr, 8, bcr, 8, 8, 8);
    }

    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        Plane &plane = st.frame->plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : cx;
        const int y = b < 4 ? ly + (b >> 1) * 8 : cy;
        const Pixel *pp;
        int ps;
        if (b < 4) {
            pp = luma + (b >> 1) * 8 * 16 + (b & 1) * 8;
            ps = 16;
        } else {
            pp = b == 4 ? cb : cr;
            ps = 8;
        }
        Pixel *dst = plane.row(y) + x;
        dsp_.copy_rect(dst, plane.stride(), pp, ps, 8, 8);
        if (cbp & (1 << b)) {
            mpeg_recon_block(blocks[b], *st.inter_quant, -1, dst,
                             plane.stride(), dsp_);
        }
    }
}

bool
Mpeg4Decoder::decode_p_inter_mb(MbState &st, bool four)
{
    BitReader &br = *st.br;
    const MotionVector pred = median_pred(st.mbx, st.mby);
    MotionVector mv[4];
    const int count = four ? 4 : 1;
    for (int b = 0; b < count; ++b) {
        mv[b] = {static_cast<s16>(pred.x + read_se(br)),
                 static_cast<s16>(pred.y + read_se(br))};
        mv[b] = clamp_mv(mv[b], st.mbx, st.mby, four ? b : -1);
    }
    if (!four)
        mv[1] = mv[2] = mv[3] = mv[0];
    if (br.has_error())
        return false;

    int cbp;
    Coeff blocks[6][64];
    if (!read_blocks(st, &cbp, blocks))
        return false;

    recon_inter_mb(st, last_anchor_, nullptr, mv, four, {}, cbp,
                   blocks);
    st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] = kDcPredReset;
    mv_grid_[st.mby * mb_w_ + st.mbx] = mv[0];
    if (st.rec != nullptr) {
        // 4MV collapses to its first vector; good enough as a seed.
        st.rec->mode = MbSideInfo::kInterFwd;
        st.rec->fwd = mv[0];
    }
    return true;
}

bool
Mpeg4Decoder::decode_b_inter_mb(MbState &st, int mode)
{
    BitReader &br = *st.br;
    const bool use_fwd = mode == mpeg4::kBFwd || mode == mpeg4::kBBi;
    const bool use_bwd = mode == mpeg4::kBBwd || mode == mpeg4::kBBi;
    MotionVector fwd{}, bwd{};
    if (use_fwd) {
        fwd = {static_cast<s16>(st.left_fwd.x + read_se(br)),
               static_cast<s16>(st.left_fwd.y + read_se(br))};
        fwd = clamp_mv(fwd, st.mbx, st.mby, -1);
    }
    if (use_bwd) {
        bwd = {static_cast<s16>(st.left_bwd.x + read_se(br)),
               static_cast<s16>(st.left_bwd.y + read_se(br))};
        bwd = clamp_mv(bwd, st.mbx, st.mby, -1);
    }
    if (br.has_error())
        return false;

    int cbp;
    Coeff blocks[6][64];
    if (!read_blocks(st, &cbp, blocks))
        return false;

    const MotionVector fmv[4] = {use_fwd ? fwd : bwd, {}, {}, {}};
    if (!use_fwd) {
        recon_inter_mb(st, last_anchor_, nullptr, fmv, false, {}, cbp,
                       blocks);
    } else {
        recon_inter_mb(st, prev_anchor_,
                       use_bwd ? &last_anchor_ : nullptr, fmv, false,
                       bwd, cbp, blocks);
    }
    st.left_fwd = use_fwd ? fwd : MotionVector{};
    st.left_bwd = use_bwd ? bwd : MotionVector{};
    st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] = kDcPredReset;
    if (st.rec != nullptr) {
        st.rec->mode = use_fwd && use_bwd
                           ? MbSideInfo::kInterBi
                           : (use_fwd ? MbSideInfo::kInterFwd
                                      : MbSideInfo::kInterBwd);
        st.rec->fwd = fwd;
        st.rec->bwd = bwd;
    }
    return true;
}

void
Mpeg4Decoder::recon_skip_mb(Frame *frame, PictureType type, int mbx,
                            int mby)
{
    MbState st{};
    st.frame = frame;
    st.mbx = mbx;
    st.mby = mby;
    Coeff blocks[6][64];
    const MotionVector zero[4] = {};
    if (type == PictureType::kB) {
        recon_inter_mb(st, prev_anchor_, &last_anchor_, zero, false, {},
                       0, blocks);
    } else {
        recon_inter_mb(st, last_anchor_, nullptr, zero, false, {}, 0,
                       blocks);
    }
}

void
Mpeg4Decoder::conceal_row(Frame *out, PictureType type, int from,
                          int mby)
{
    for (int mbx = from; mbx < mb_w_; ++mbx) {
        if (type == PictureType::kI || last_anchor_.empty())
            conceal_mb_dc(out, mbx, mby);
        else
            conceal_mb_from_ref(out, last_anchor_, mbx, mby);
        mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
    }
}

bool
Mpeg4Decoder::decode_resilient_row(MbState &st,
                                   const std::vector<u8> &bytes, int mby,
                                   int *bad_from)
{
    BitReader br(bytes);
    st.br = &br;
    st.mby = mby;
    st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] = kDcPredReset;
    st.left_fwd = st.left_bwd = MotionVector{};
    *bad_from = 0;

    if (st.type == PictureType::kI) {
        for (int mbx = 0; mbx < mb_w_; ++mbx) {
            st.mbx = mbx;
            if (!decode_intra_mb(st)) {
                *bad_from = mbx;
                return false;
            }
        }
    } else {
        const bool is_b = st.type == PictureType::kB;
        int mbx = 0;
        while (mbx < mb_w_) {
            const int run = static_cast<int>(read_ue(br));
            if (br.has_error() || run > mb_w_ - mbx) {
                *bad_from = mbx;
                return false;
            }
            for (int i = 0; i < run; ++i) {
                st.mbx = mbx;
                recon_skip_mb(st.frame, st.type, mbx, mby);
                st.left_fwd = st.left_bwd = MotionVector{};
                st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] =
                    kDcPredReset;
                mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
                ++mbx;
            }
            if (mbx >= mb_w_)
                break;
            st.mbx = mbx;
            const u32 mode = read_ue(br);
            if (br.has_error() || mode > 3) {
                *bad_from = mbx;
                return false;
            }
            bool ok;
            if (is_b) {
                ok = mode == mpeg4::kBIntra
                         ? decode_intra_mb(st)
                         : decode_b_inter_mb(st,
                                             static_cast<int>(mode));
            } else {
                if (mode == mpeg4::kPIntra)
                    ok = decode_intra_mb(st);
                else if (mode == mpeg4::kPInter16)
                    ok = decode_p_inter_mb(st, false);
                else if (mode == mpeg4::kPInter4v)
                    ok = decode_p_inter_mb(st, true);
                else
                    ok = false;
            }
            if (!ok) {
                *bad_from = mbx;
                return false;
            }
            ++mbx;
        }
    }

    const u32 sentinel = br.get_bits(8);
    if (br.has_error() || sentinel != kRowSentinel)
        return false;
    if (bytes.size() * 8 - br.bits_consumed() >= 8)
        return false;  // trailing junk beyond alignment padding
    return true;
}

Status
Mpeg4Decoder::decode_picture_resilient(const Packet &packet, Frame *out)
{
    const std::vector<ResyncMarker> cands =
        scan_resync_markers(packet.data, mb_h_);
    std::vector<ResyncMarker> markers;
    int last_row = -1;
    for (const ResyncMarker &m : cands) {
        if (m.row > last_row) {
            markers.push_back(m);
            last_row = m.row;
        }
    }
    if (markers.empty())
        return Status::corrupt_stream("no resync markers survive");

    const std::vector<u8> header =
        unescape_emulation(packet.data.data(), markers.front().pos);
    BitReader hbr(header);
    const PictureType type = static_cast<PictureType>(hbr.get_bits(2));
    const int qscale = static_cast<int>(hbr.get_bits(5));
    hbr.skip_bits(2);   // qpel / 4MV flags (informational)
    hbr.skip_bits(16);  // poc_lsb
    if (hbr.has_error() || type != packet.type)
        return Status::corrupt_stream("bad mpeg4 picture header");
    if (qscale < 1 || qscale > 31)
        return Status::corrupt_stream("bad mpeg4 qscale");
    if (type != PictureType::kI && last_anchor_.empty())
        return Status::corrupt_stream("inter picture without reference");
    if (type == PictureType::kB && prev_anchor_.empty())
        return Status::corrupt_stream("B picture without two references");

    const MpegQuantizer intra_quant(kMpegIntraMatrix, qscale, 32);
    const MpegQuantizer inter_quant(kMpegInterMatrix, qscale, 16);

    *out = new_frame(kRefBorder);
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    std::vector<std::pair<const u8 *, size_t>> segments(
        static_cast<size_t>(mb_h_), {nullptr, 0});
    for (size_t i = 0; i < markers.size(); ++i) {
        const size_t start = markers[i].pos + 4;
        const size_t end = i + 1 < markers.size() ? markers[i + 1].pos
                                                  : packet.data.size();
        segments[static_cast<size_t>(markers[i].row)] = {
            packet.data.data() + start, end - start};
    }

    // Rows are fully independent here: fresh per-row entropy chunk and
    // predictors, MV prediction is left-only in resilient mode (so
    // mv_grid_ reads stay within the row each task writes), and inter
    // prediction reads only the anchor frames. Decode the rows in
    // parallel when the codec has a band pool, then run concealment
    // and stats as a serial top-to-bottom pass — spatial DC
    // concealment reads the pixel row above, which is final by then,
    // exactly as in the serial schedule.
    struct RowResult {
        bool ok = false;
        int bad_from = 0;
    };
    std::vector<RowResult> rows(static_cast<size_t>(mb_h_));
    auto decode_row = [&](int mby) {
        const auto &seg = segments[static_cast<size_t>(mby)];
        if (seg.first == nullptr)
            return;
        MbState st{};
        st.frame = out;
        st.type = type;
        st.intra_quant = &intra_quant;
        st.inter_quant = &inter_quant;
        const std::vector<u8> row_bytes =
            unescape_emulation(seg.first, seg.second);
        RowResult &r = rows[static_cast<size_t>(mby)];
        r.ok = decode_resilient_row(st, row_bytes, mby, &r.bad_from);
    };
    if (pool_ != nullptr) {
        parallel_for(*pool_, mb_h_,
                     [&](int mby, int) { decode_row(mby); });
    } else {
        for (int mby = 0; mby < mb_h_; ++mby)
            decode_row(mby);
    }

    bool in_error = false;
    bool any_ok = false;
    for (int mby = 0; mby < mb_h_; ++mby) {
        const RowResult &r = rows[static_cast<size_t>(mby)];
        if (r.ok) {
            if (in_error) {
                ++stats_.resyncs;
                in_error = false;
            }
            any_ok = true;
        } else {
            in_error = true;
            conceal_row(out, type, r.bad_from, mby);
            stats_.mbs_concealed += mb_w_ - r.bad_from;
        }
    }
    if (!any_ok)
        return Status::corrupt_stream("every row of the picture lost");

    if (type != PictureType::kB) {
        out->extend_borders();
        prev_anchor_ = std::move(last_anchor_);
        last_anchor_ = new_frame(kRefBorder);
        last_anchor_.copy_from(*out);
        last_anchor_.extend_borders();
    }
    return Status::ok();
}

Status
Mpeg4Decoder::decode_picture(const Packet &packet, Frame *out)
{
    if (config().error_resilience)
        return decode_picture_resilient(packet, out);

    BitReader br(packet.data);
    const PictureType type = static_cast<PictureType>(br.get_bits(2));
    const int qscale = static_cast<int>(br.get_bits(5));
    br.skip_bits(2);   // qpel / 4MV flags (informational)
    br.skip_bits(16);  // poc_lsb
    if (br.has_error() || type != packet.type)
        return Status::corrupt_stream("bad mpeg4 picture header");
    if (qscale < 1 || qscale > 31)
        return Status::corrupt_stream("bad mpeg4 qscale");
    if (type != PictureType::kI && last_anchor_.empty())
        return Status::corrupt_stream("inter picture without reference");
    if (type == PictureType::kB && prev_anchor_.empty())
        return Status::corrupt_stream("B picture without two references");

    const MpegQuantizer intra_quant(kMpegIntraMatrix, qscale, 32);
    const MpegQuantizer inter_quant(kMpegInterMatrix, qscale, 16);

    *out = new_frame(kRefBorder);
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    MbState st{};
    st.br = &br;
    st.frame = out;
    st.type = type;
    st.intra_quant = &intra_quant;
    st.inter_quant = &inter_quant;

    const bool record = side_info_sink() != nullptr;
    PictureSideInfo si;
    if (record) {
        si.poc = packet.poc;
        si.type = type;
        si.mb_w = mb_w_;
        si.mb_h = mb_h_;
        si.quant = qscale;
        si.mbs.resize(static_cast<size_t>(mb_w_) * mb_h_);
    }

    const bool is_b = type == PictureType::kB;
    if (type == PictureType::kI) {
        for (int mby = 0; mby < mb_h_; ++mby) {
            st.mby = mby;
            st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] = kDcPredReset;
            for (int mbx = 0; mbx < mb_w_; ++mbx) {
                st.mbx = mbx;
                st.rec = record ? &si.at(mbx, mby) : nullptr;
                if (!decode_intra_mb(st))
                    return Status::corrupt_stream("bad intra MB data");
            }
        }
    } else {
        int mb = 0;
        const int total = mb_w_ * mb_h_;
        int cur_row = -1;
        auto enter = [&](int index) {
            st.mbx = index % mb_w_;
            st.mby = index / mb_w_;
            if (st.mby != cur_row) {
                cur_row = st.mby;
                st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] =
                    kDcPredReset;
                st.left_fwd = st.left_bwd = MotionVector{};
            }
        };
        while (mb < total) {
            const int run = static_cast<int>(read_ue(br));
            if (br.has_error() || run > total - mb)
                return Status::corrupt_stream("bad skip run");
            for (int i = 0; i < run; ++i) {
                enter(mb);
                recon_skip_mb(out, type, st.mbx, st.mby);
                if (record)
                    si.at(st.mbx, st.mby).mode = MbSideInfo::kSkip;
                st.left_fwd = st.left_bwd = MotionVector{};
                st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] =
                    kDcPredReset;
                mv_grid_[st.mby * mb_w_ + st.mbx] = MotionVector{};
                ++mb;
            }
            if (mb >= total)
                break;
            enter(mb);
            st.rec = record ? &si.at(st.mbx, st.mby) : nullptr;
            const u32 mode = read_ue(br);
            if (br.has_error() || mode > 3)
                return Status::corrupt_stream("bad mb type");
            bool ok;
            if (is_b) {
                ok = mode == mpeg4::kBIntra
                         ? decode_intra_mb(st)
                         : decode_b_inter_mb(st, static_cast<int>(mode));
            } else {
                if (mode == mpeg4::kPIntra)
                    ok = decode_intra_mb(st);
                else if (mode == mpeg4::kPInter16)
                    ok = decode_p_inter_mb(st, false);
                else if (mode == mpeg4::kPInter4v)
                    ok = decode_p_inter_mb(st, true);
                else
                    return Status::corrupt_stream("bad P mb type");
            }
            if (!ok)
                return Status::corrupt_stream("bad MB data");
            ++mb;
        }
    }
    if (br.has_error())
        return Status::corrupt_stream("truncated mpeg4 picture");

    if (record)
        side_info_sink()->push(std::move(si));

    if (type != PictureType::kB) {
        out->extend_borders();
        prev_anchor_ = std::move(last_anchor_);
        last_anchor_ = new_frame(kRefBorder);
        last_anchor_.copy_from(*out);
        last_anchor_.extend_borders();
    }
    return Status::ok();
}

}  // namespace

std::unique_ptr<VideoDecoder>
create_mpeg4_decoder(const CodecConfig &config)
{
    HDVB_CHECK(config.validate().is_ok());
    return std::make_unique<Mpeg4Decoder>(config);
}

}  // namespace hdvb
