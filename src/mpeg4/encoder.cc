/**
 * @file
 * MPEG-4-ASP-class encoder: EPZS motion estimation, quarter-sample MC,
 * optional four-MV macroblocks, median MV prediction, 8x8 DCT with a
 * tuned dead zone.
 */
#include "mpeg4/mpeg4.h"

#include <cstring>
#include <vector>

#include "bitstream/bit_writer.h"
#include "bitstream/exp_golomb.h"
#include "bitstream/resync.h"
#include "codec/mpeg_block.h"
#include "codec/run_level.h"
#include "common/check.h"
#include "dsp/quant.h"
#include "mc/mc.h"
#include "me/me.h"

namespace hdvb {

namespace {

using mpeg4::kDcPredReset;
using mpeg4::kDcStep;

struct PredBuffers {
    Pixel luma[16 * 16];
    Pixel cb[8 * 8];
    Pixel cr[8 * 8];
};

/** Average of four quarter-sample MVs then halved for chroma, with
 * symmetric rounding — must match the decoder exactly. */
MotionVector
chroma_mv_from_4mv(const MotionVector mv[4])
{
    const int sx = mv[0].x + mv[1].x + mv[2].x + mv[3].x;
    const int sy = mv[0].y + mv[1].y + mv[2].y + mv[3].y;
    return {static_cast<s16>(div_round(sx, 8)),
            static_cast<s16>(div_round(sy, 8))};
}

class Mpeg4Encoder final : public EncoderBase
{
  public:
    explicit Mpeg4Encoder(const CodecConfig &cfg)
        : EncoderBase(cfg),
          dsp_(get_dsp(cfg.simd)),
          intra_quant_(kMpegIntraMatrix, cfg.qscale, 32),
          inter_quant_(kMpegInterMatrix, cfg.qscale, 10),
          intra_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg4Intra)),
          inter_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg4Inter)),
          me_(MeParams{cfg.me_range, cfg.qscale * 16, 2, &dsp_}),
          mb_w_(cfg.width / 16),
          mb_h_(cfg.height / 16),
          anchor_mvs_(static_cast<size_t>(mb_w_) * mb_h_),
          mv_grid_(static_cast<size_t>(mb_w_) * mb_h_)
    {
    }

    const char *name() const override { return "mpeg4"; }

  protected:
    std::vector<u8> encode_picture(const Frame &src,
                                   PictureType type) override;

  private:
    struct MbContext {
        BitWriter *bw;
        const Frame *src;
        PictureType type;
        int mbx;
        int mby;
        int dc_pred[3];
        MotionVector left_fwd;  // B-picture chains (quarter-pel)
        MotionVector left_bwd;
        int pending_skips;
    };

    void encode_mb(MbContext &ctx);
    void encode_intra_mb(MbContext &ctx);
    void encode_inter_mb(MbContext &ctx, int mode, const MotionVector *mv,
                         MotionVector bwd);

    /** Median MV predictor from the decoded-MV grid (P pictures). */
    MotionVector median_pred(int mbx, int mby) const;
    MeResult estimate(const Frame &src, const Frame &ref, int x0, int y0,
                      int size, MotionVector pred_sub,
                      const std::vector<MotionVector> &cands) const;
    void predict_luma(const Frame &ref, int mbx, int mby,
                      const MotionVector *mv, bool four,
                      Pixel luma[16 * 16]) const;
    void predict_chroma(const Frame &ref, int mbx, int mby,
                        MotionVector cmv, Pixel cb[8 * 8],
                        Pixel cr[8 * 8]) const;
    void build_pred(const Frame &fwd_ref, const Frame *bwd_ref,
                    const MotionVector *fwd, bool four, MotionVector bwd,
                    int mbx, int mby, PredBuffers *pred) const;
    int intra_cost(const Frame &src, int mbx, int mby) const;
    std::vector<MotionVector> gather_candidates(int mbx, int mby) const;
    MotionVector quantize_mv(MotionVector mv) const;

    const Dsp &dsp_;
    MpegQuantizer intra_quant_;
    MpegQuantizer inter_quant_;
    const RunLevelCoder &intra_rl_;
    const RunLevelCoder &inter_rl_;
    MotionEstimator me_;
    int mb_w_;
    int mb_h_;

    Frame prev_anchor_;
    Frame last_anchor_;
    std::vector<MotionVector> anchor_mvs_;  ///< full-pel collocated
    std::vector<MotionVector> mv_grid_;     ///< quarter-pel, current
    Frame recon_;
};

MotionVector
Mpeg4Encoder::quantize_mv(MotionVector mv) const
{
    if (config().qpel)
        return mv;
    // qpel disabled: restrict to half-sample positions (even values).
    return {static_cast<s16>(mv.x & ~1), static_cast<s16>(mv.y & ~1)};
}

MotionVector
Mpeg4Encoder::median_pred(int mbx, int mby) const
{
    const MotionVector zero{};
    const MotionVector a =
        mbx > 0 ? mv_grid_[mby * mb_w_ + mbx - 1] : zero;
    // Resilient rows must parse standalone: predict from the left
    // neighbour only, so a concealed row cannot skew the MVs of the
    // rows below it (the decoder mirrors this).
    if (mby == 0 || config().error_resilience)
        return a;
    const MotionVector b = mv_grid_[(mby - 1) * mb_w_ + mbx];
    const MotionVector c = mbx + 1 < mb_w_
                               ? mv_grid_[(mby - 1) * mb_w_ + mbx + 1]
                               : zero;
    return {median3(a.x, b.x, c.x), median3(a.y, b.y, c.y)};
}

std::vector<MotionVector>
Mpeg4Encoder::gather_candidates(int mbx, int mby) const
{
    std::vector<MotionVector> cands;
    cands.reserve(4);
    const int idx = mby * mb_w_ + mbx;
    if (mbx > 0) {
        const MotionVector l = mv_grid_[idx - 1];
        cands.push_back({static_cast<s16>(l.x >> 2),
                         static_cast<s16>(l.y >> 2)});
    }
    if (mby > 0) {
        const MotionVector t = mv_grid_[idx - mb_w_];
        cands.push_back({static_cast<s16>(t.x >> 2),
                         static_cast<s16>(t.y >> 2)});
        if (mbx + 1 < mb_w_) {
            const MotionVector tr = mv_grid_[idx - mb_w_ + 1];
            cands.push_back({static_cast<s16>(tr.x >> 2),
                             static_cast<s16>(tr.y >> 2)});
        }
    }
    cands.push_back(anchor_mvs_[idx]);
    return cands;
}

MeResult
Mpeg4Encoder::estimate(const Frame &src, const Frame &ref, int x0,
                       int y0, int size, MotionVector pred_sub,
                       const std::vector<MotionVector> &cands) const
{
    MeBlock blk;
    blk.cur = &src.luma();
    blk.ref = &ref.luma();
    blk.x0 = x0;
    blk.y0 = y0;
    blk.w = size;
    blk.h = size;
    const MeResult full = me_.epzs(blk, pred_sub, cands);
    const MotionVector start{static_cast<s16>(full.mv.x * 4),
                             static_cast<s16>(full.mv.y * 4)};
    auto predict = [&](MotionVector mv, Pixel *dst, int ds) {
        mc_qpel_tap(ref.luma(), x0, y0, mv, dst, ds, size, size, dsp_);
    };
    MeResult res =
        config().qpel
            ? subpel_refine(blk, start, pred_sub, me_.params(), {2, 1},
                            /*use_satd=*/false, predict)
            : subpel_refine(blk, start, pred_sub, me_.params(), {2},
                            /*use_satd=*/false, predict);
    res.mv = quantize_mv(res.mv);
    return res;
}

void
Mpeg4Encoder::predict_luma(const Frame &ref, int mbx, int mby,
                           const MotionVector *mv, bool four,
                           Pixel luma[16 * 16]) const
{
    const int lx = mbx * 16;
    const int ly = mby * 16;
    if (!four) {
        mc_qpel_tap(ref.luma(), lx, ly, mv[0], luma, 16, 16, 16, dsp_);
        return;
    }
    for (int b = 0; b < 4; ++b) {
        const int bx = lx + (b & 1) * 8;
        const int by = ly + (b >> 1) * 8;
        mc_qpel_tap(ref.luma(), bx, by, mv[b],
                      luma + (b >> 1) * 8 * 16 + (b & 1) * 8, 16, 8, 8,
                      dsp_);
    }
}

void
Mpeg4Encoder::predict_chroma(const Frame &ref, int mbx, int mby,
                             MotionVector cmv, Pixel cb[8 * 8],
                             Pixel cr[8 * 8]) const
{
    const int cx = mbx * 8;
    const int cy = mby * 8;
    mc_qpel_bilin(ref.cb(), cx, cy, cmv, cb, 8, 8, 8, dsp_);
    mc_qpel_bilin(ref.cr(), cx, cy, cmv, cr, 8, 8, 8, dsp_);
}

void
Mpeg4Encoder::build_pred(const Frame &fwd_ref, const Frame *bwd_ref,
                         const MotionVector *fwd, bool four,
                         MotionVector bwd, int mbx, int mby,
                         PredBuffers *pred) const
{
    predict_luma(fwd_ref, mbx, mby, fwd, four, pred->luma);
    const MotionVector cmv = four ? chroma_mv_from_4mv(fwd)
                                  : chroma_mv_from_qpel(fwd[0]);
    predict_chroma(fwd_ref, mbx, mby, cmv, pred->cb, pred->cr);
    if (bwd_ref != nullptr) {
        PredBuffers back;
        const MotionVector bmv[4] = {bwd, bwd, bwd, bwd};
        predict_luma(*bwd_ref, mbx, mby, bmv, false, back.luma);
        predict_chroma(*bwd_ref, mbx, mby, chroma_mv_from_qpel(bwd),
                       back.cb, back.cr);
        dsp_.avg_rect(pred->luma, 16, pred->luma, 16, back.luma, 16, 16,
                      16);
        dsp_.avg_rect(pred->cb, 8, pred->cb, 8, back.cb, 8, 8, 8);
        dsp_.avg_rect(pred->cr, 8, pred->cr, 8, back.cr, 8, 8, 8);
    }
}

int
Mpeg4Encoder::intra_cost(const Frame &src, int mbx, int mby) const
{
    const Plane &luma = src.luma();
    int sum = 0;
    for (int y = 0; y < 16; ++y) {
        const Pixel *row = luma.row(mby * 16 + y) + mbx * 16;
        for (int x = 0; x < 16; ++x)
            sum += row[x];
    }
    const int mean = (sum + 128) >> 8;
    int dev = 0;
    for (int y = 0; y < 16; ++y) {
        const Pixel *row = luma.row(mby * 16 + y) + mbx * 16;
        for (int x = 0; x < 16; ++x) {
            const int d = row[x] - mean;
            dev += d < 0 ? -d : d;
        }
    }
    return dev + ((me_.params().lambda16 * 96) >> 4);
}

std::vector<u8>
Mpeg4Encoder::encode_picture(const Frame &src, PictureType type)
{
    const CodecConfig &cfg = config();
    recon_ = Frame(cfg.width, cfg.height, kRefBorder);
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    MbContext ctx{};
    ctx.src = &src;
    ctx.type = type;

    std::vector<u8> out;
    if (cfg.error_resilience) {
        // Resilient layout (see src/bitstream/resync.h): escaped
        // header, then per row a resync marker plus an escaped,
        // sentinel-terminated segment with row-scoped skip runs.
        BitWriter hbw;
        hbw.put_bits(static_cast<u32>(type), 2);
        hbw.put_bits(static_cast<u32>(cfg.qscale), 5);
        hbw.put_bit(cfg.qpel);
        hbw.put_bit(cfg.four_mv);
        hbw.put_bits(static_cast<u32>(src.poc() & 0xFFFF), 16);
        const std::vector<u8> header = hbw.finish();
        escape_emulation(header.data(), header.size(), &out);

        BitWriter rbw;
        ctx.bw = &rbw;
        for (int mby = 0; mby < mb_h_; ++mby) {
            ctx.mby = mby;
            ctx.dc_pred[0] = ctx.dc_pred[1] = ctx.dc_pred[2] =
                kDcPredReset;
            ctx.left_fwd = ctx.left_bwd = MotionVector{};
            ctx.pending_skips = 0;
            for (int mbx = 0; mbx < mb_w_; ++mbx) {
                ctx.mbx = mbx;
                encode_mb(ctx);
            }
            if (type != PictureType::kI && ctx.pending_skips > 0) {
                write_ue(rbw, static_cast<u32>(ctx.pending_skips));
                ctx.pending_skips = 0;
            }
            rbw.put_bits(kRowSentinel, 8);
            const std::vector<u8> row = rbw.finish();
            append_resync_marker(&out, mby);
            escape_emulation(row.data(), row.size(), &out);
        }
    } else {
        BitWriter bw;
        bw.put_bits(static_cast<u32>(type), 2);
        bw.put_bits(static_cast<u32>(cfg.qscale), 5);
        bw.put_bit(cfg.qpel);
        bw.put_bit(cfg.four_mv);
        bw.put_bits(static_cast<u32>(src.poc() & 0xFFFF), 16);
        ctx.bw = &bw;
        for (int mby = 0; mby < mb_h_; ++mby) {
            ctx.mby = mby;
            ctx.dc_pred[0] = ctx.dc_pred[1] = ctx.dc_pred[2] =
                kDcPredReset;
            ctx.left_fwd = ctx.left_bwd = MotionVector{};
            for (int mbx = 0; mbx < mb_w_; ++mbx) {
                ctx.mbx = mbx;
                encode_mb(ctx);
            }
        }
        if (type != PictureType::kI)
            write_ue(bw, static_cast<u32>(ctx.pending_skips));
        out = bw.finish();
    }

    recon_.extend_borders();
    if (type != PictureType::kB) {
        prev_anchor_ = std::move(last_anchor_);
        last_anchor_ = std::move(recon_);
        for (size_t i = 0; i < mv_grid_.size(); ++i)
            anchor_mvs_[i] = {static_cast<s16>(mv_grid_[i].x >> 2),
                              static_cast<s16>(mv_grid_[i].y >> 2)};
    }
    return out;
}

void
Mpeg4Encoder::encode_mb(MbContext &ctx)
{
    if (ctx.type == PictureType::kI) {
        encode_intra_mb(ctx);
        return;
    }

    const int icost = intra_cost(*ctx.src, ctx.mbx, ctx.mby);

    if (ctx.type == PictureType::kP) {
        const MotionVector pred = median_pred(ctx.mbx, ctx.mby);
        const std::vector<MotionVector> cands =
            gather_candidates(ctx.mbx, ctx.mby);
        const MeResult r16 = estimate(*ctx.src, last_anchor_,
                                      ctx.mbx * 16, ctx.mby * 16, 16,
                                      pred, cands);

        MotionVector mv[4] = {r16.mv, r16.mv, r16.mv, r16.mv};
        bool four = false;
        if (config().four_mv) {
            // 4MV: refine each 8x8 quadrant; adopt if the summed cost
            // beats 16x16 plus the extra vector overhead.
            MeResult sub[4];
            int cost4 = (me_.params().lambda16 * 40) >> 4;
            std::vector<MotionVector> c8 = cands;
            c8.push_back({static_cast<s16>(r16.mv.x >> 2),
                          static_cast<s16>(r16.mv.y >> 2)});
            for (int b = 0; b < 4; ++b) {
                sub[b] = estimate(*ctx.src, last_anchor_,
                                  ctx.mbx * 16 + (b & 1) * 8,
                                  ctx.mby * 16 + (b >> 1) * 8, 8, pred,
                                  c8);
                cost4 += sub[b].cost;
            }
            if (cost4 < r16.cost) {
                four = true;
                for (int b = 0; b < 4; ++b)
                    mv[b] = sub[b].mv;
            }
        }

        const int inter_cost = four ? 0 : r16.cost;  // four => chosen
        if (!four && icost < inter_cost) {
            write_ue(*ctx.bw, static_cast<u32>(ctx.pending_skips));
            ctx.pending_skips = 0;
            write_ue(*ctx.bw, mpeg4::kPIntra);
            encode_intra_mb(ctx);
            return;
        }
        encode_inter_mb(ctx,
                        four ? mpeg4::kPInter4v : mpeg4::kPInter16, mv,
                        {});
        return;
    }

    // B picture.
    const MeResult fwd = estimate(*ctx.src, prev_anchor_, ctx.mbx * 16,
                                  ctx.mby * 16, 16, ctx.left_fwd,
                                  gather_candidates(ctx.mbx, ctx.mby));
    const MeResult bwd = estimate(*ctx.src, last_anchor_, ctx.mbx * 16,
                                  ctx.mby * 16, 16, ctx.left_bwd,
                                  gather_candidates(ctx.mbx, ctx.mby));

    PredBuffers bi;
    const MotionVector fmv[4] = {fwd.mv, fwd.mv, fwd.mv, fwd.mv};
    build_pred(prev_anchor_, &last_anchor_, fmv, false, bwd.mv, ctx.mbx,
               ctx.mby, &bi);
    const Plane &luma = ctx.src->luma();
    const int bi_sad =
        dsp_.sad16x16(luma.row(ctx.mby * 16) + ctx.mbx * 16,
                      luma.stride(), bi.luma, 16);
    const int bi_cost =
        bi_sad + mv_rate_cost(fwd.mv, ctx.left_fwd, me_.params().lambda16)
        + mv_rate_cost(bwd.mv, ctx.left_bwd, me_.params().lambda16);

    int best = mpeg4::kBBi;
    int best_cost = bi_cost;
    if (fwd.cost < best_cost) {
        best = mpeg4::kBFwd;
        best_cost = fwd.cost;
    }
    if (bwd.cost < best_cost) {
        best = mpeg4::kBBwd;
        best_cost = bwd.cost;
    }
    if (icost < best_cost) {
        write_ue(*ctx.bw, static_cast<u32>(ctx.pending_skips));
        ctx.pending_skips = 0;
        write_ue(*ctx.bw, mpeg4::kBIntra);
        encode_intra_mb(ctx);
        return;
    }
    const MotionVector bmv[4] = {fwd.mv, fwd.mv, fwd.mv, fwd.mv};
    encode_inter_mb(ctx, best, bmv, bwd.mv);
}

void
Mpeg4Encoder::encode_intra_mb(MbContext &ctx)
{
    BitWriter &bw = *ctx.bw;
    const int lx = ctx.mbx * 16;
    const int ly = ctx.mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        const Plane &src_plane = ctx.src->plane(comp);
        Plane &rec_plane = recon_.plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : ctx.mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : ctx.mby * 8;

        Coeff blk[64];
        for (int yy = 0; yy < 8; ++yy) {
            const Pixel *row = src_plane.row(y + yy) + x;
            for (int xx = 0; xx < 8; ++xx)
                blk[yy * 8 + xx] = row[xx];
        }
        dsp_.fdct8x8(blk);
        const int dc_level = clamp(div_round(blk[0], kDcStep), 0, 255);
        blk[0] = 0;
        intra_quant_.quantize(blk);

        write_se(bw, dc_level - ctx.dc_pred[comp]);
        ctx.dc_pred[comp] = dc_level;
        intra_rl_.encode_block(bw, blk, 1);

        Pixel *dst = rec_plane.row(y) + x;
        zero_block8(dst, rec_plane.stride());
        mpeg_recon_block(blk, intra_quant_, dc_level * kDcStep, dst,
                         rec_plane.stride(), dsp_);
    }
    ctx.left_fwd = ctx.left_bwd = MotionVector{};
    mv_grid_[ctx.mby * mb_w_ + ctx.mbx] = MotionVector{};
}

void
Mpeg4Encoder::encode_inter_mb(MbContext &ctx, int mode,
                              const MotionVector *mv, MotionVector bwd)
{
    const bool is_b = ctx.type == PictureType::kB;
    const bool four = !is_b && mode == mpeg4::kPInter4v;
    bool use_fwd = true;
    bool use_bwd = false;
    MotionVector fwd = mv[0];
    if (is_b) {
        use_fwd = mode == mpeg4::kBFwd || mode == mpeg4::kBBi;
        use_bwd = mode == mpeg4::kBBwd || mode == mpeg4::kBBi;
        if (!use_fwd)
            fwd = {};
        if (!use_bwd)
            bwd = {};
    }

    PredBuffers pred;
    if (is_b) {
        if (!use_fwd) {
            const MotionVector bmv[4] = {bwd, bwd, bwd, bwd};
            build_pred(last_anchor_, nullptr, bmv, false, {}, ctx.mbx,
                       ctx.mby, &pred);
        } else {
            const MotionVector fmv[4] = {fwd, fwd, fwd, fwd};
            build_pred(prev_anchor_, use_bwd ? &last_anchor_ : nullptr,
                       fmv, false, bwd, ctx.mbx, ctx.mby, &pred);
        }
    } else {
        build_pred(last_anchor_, nullptr, mv, four, {}, ctx.mbx,
                   ctx.mby, &pred);
    }

    Coeff blocks[6][64];
    int cbp = 0;
    const int lx = ctx.mbx * 16;
    const int ly = ctx.mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        const Plane &src_plane = ctx.src->plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : ctx.mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : ctx.mby * 8;
        const Pixel *pp;
        int ps;
        if (b < 4) {
            pp = pred.luma + (b >> 1) * 8 * 16 + (b & 1) * 8;
            ps = 16;
        } else {
            pp = b == 4 ? pred.cb : pred.cr;
            ps = 8;
        }
        dsp_.sub_rect(blocks[b], 8, src_plane.row(y) + x,
                      src_plane.stride(), pp, ps, 8, 8);
        dsp_.fdct8x8(blocks[b]);
        if (inter_quant_.quantize(blocks[b]) != 0)
            cbp |= 1 << b;
    }

    const bool skippable =
        cbp == 0 && !four &&
        (is_b ? (mode == mpeg4::kBBi && fwd == MotionVector{} &&
                 bwd == MotionVector{})
              : fwd == MotionVector{});
    if (skippable) {
        ++ctx.pending_skips;
        ctx.left_fwd = ctx.left_bwd = MotionVector{};
        mv_grid_[ctx.mby * mb_w_ + ctx.mbx] = MotionVector{};
    } else {
        BitWriter &bw = *ctx.bw;
        write_ue(bw, static_cast<u32>(ctx.pending_skips));
        ctx.pending_skips = 0;
        write_ue(bw, static_cast<u32>(mode));
        if (is_b) {
            if (use_fwd) {
                write_se(bw, fwd.x - ctx.left_fwd.x);
                write_se(bw, fwd.y - ctx.left_fwd.y);
            }
            if (use_bwd) {
                write_se(bw, bwd.x - ctx.left_bwd.x);
                write_se(bw, bwd.y - ctx.left_bwd.y);
            }
            ctx.left_fwd = use_fwd ? fwd : MotionVector{};
            ctx.left_bwd = use_bwd ? bwd : MotionVector{};
        } else {
            const MotionVector p = median_pred(ctx.mbx, ctx.mby);
            const int count = four ? 4 : 1;
            for (int b = 0; b < count; ++b) {
                write_se(bw, mv[b].x - p.x);
                write_se(bw, mv[b].y - p.y);
            }
        }
        bw.put_bits(static_cast<u32>(cbp), 6);
        for (int b = 0; b < 6; ++b) {
            if (cbp & (1 << b))
                inter_rl_.encode_block(bw, blocks[b], 0);
        }
        ctx.dc_pred[0] = ctx.dc_pred[1] = ctx.dc_pred[2] = kDcPredReset;
        if (!is_b)
            mv_grid_[ctx.mby * mb_w_ + ctx.mbx] = mv[0];
    }
    if (skippable)
        ctx.dc_pred[0] = ctx.dc_pred[1] = ctx.dc_pred[2] = kDcPredReset;

    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        Plane &rec_plane = recon_.plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : ctx.mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : ctx.mby * 8;
        const Pixel *pp;
        int ps;
        if (b < 4) {
            pp = pred.luma + (b >> 1) * 8 * 16 + (b & 1) * 8;
            ps = 16;
        } else {
            pp = b == 4 ? pred.cb : pred.cr;
            ps = 8;
        }
        Pixel *dst = rec_plane.row(y) + x;
        dsp_.copy_rect(dst, rec_plane.stride(), pp, ps, 8, 8);
        if (cbp & (1 << b)) {
            mpeg_recon_block(blocks[b], inter_quant_, -1, dst,
                             rec_plane.stride(), dsp_);
        }
    }
}

}  // namespace

std::unique_ptr<VideoEncoder>
create_mpeg4_encoder(const CodecConfig &config)
{
    HDVB_CHECK(config.validate().is_ok());
    return std::make_unique<Mpeg4Encoder>(config);
}

}  // namespace hdvb
