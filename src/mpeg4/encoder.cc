/**
 * @file
 * MPEG-4-ASP-class encoder: EPZS motion estimation, quarter-sample MC,
 * optional four-MV macroblocks, median MV prediction, 8x8 DCT with a
 * tuned dead zone.
 *
 * Structured as analysis (decisions + reconstruction, wavefront-
 * parallel across MB rows when CodecConfig::threads > 1) followed by a
 * serial entropy-coding replay of per-MB records, exactly like the
 * MPEG-2 encoder — see src/mpeg2/encoder.cc for the pipeline notes.
 * The replay emits the identical bit sequence for any thread count.
 */
#include "mpeg4/mpeg4.h"

#include <cstring>
#include <memory>
#include <vector>

#include "bitstream/bit_writer.h"
#include "bitstream/exp_golomb.h"
#include "bitstream/resync.h"
#include "codec/mpeg_block.h"
#include "codec/run_level.h"
#include "codec/side_info.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/wavefront.h"
#include "dsp/approx.h"
#include "dsp/quant.h"
#include "mc/mc.h"
#include "me/me.h"

namespace hdvb {

namespace {

using mpeg4::kDcPredReset;
using mpeg4::kDcStep;

/** Hint vector (quarter-sample) as a clamped-by-the-estimator
 * full-sample search candidate. */
inline MotionVector
hint_full_pel(MotionVector quarter)
{
    return {static_cast<s16>(quarter.x >> 2),
            static_cast<s16>(quarter.y >> 2)};
}

struct PredBuffers {
    Pixel luma[16 * 16];
    Pixel cb[8 * 8];
    Pixel cr[8 * 8];
};

/** Average of four quarter-sample MVs then halved for chroma, with
 * symmetric rounding — must match the decoder exactly. */
MotionVector
chroma_mv_from_4mv(const MotionVector mv[4])
{
    const int sx = mv[0].x + mv[1].x + mv[2].x + mv[3].x;
    const int sy = mv[0].y + mv[1].y + mv[2].y + mv[3].y;
    return {static_cast<s16>(div_round(sx, 8)),
            static_cast<s16>(div_round(sy, 8))};
}

class Mpeg4Encoder final : public EncoderBase
{
  public:
    explicit Mpeg4Encoder(const CodecConfig &cfg)
        : EncoderBase(cfg),
          dsp_(get_dsp(cfg.simd)),
          intra_quant_(kMpegIntraMatrix, cfg.qscale, 32),
          inter_quant_(kMpegInterMatrix, cfg.qscale, 10),
          intra_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg4Intra)),
          inter_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg4Inter)),
          me_(MeParams{cfg.me_range, cfg.qscale * 16, 2, &dsp_,
                       cfg.approx}),
          dead_zone_sad_(mpeg_dead_zone_sad(cfg.qscale, 3, cfg.approx)),
          mb_w_(cfg.width / 16),
          mb_h_(cfg.height / 16),
          anchor_mvs_(static_cast<size_t>(mb_w_) * mb_h_),
          mv_grid_(static_cast<size_t>(mb_w_) * mb_h_),
          records_(static_cast<size_t>(mb_w_) * mb_h_),
          pool_(cfg.threads > 1
                    ? std::make_unique<ThreadPool>(cfg.threads)
                    : nullptr)
    {
    }

    const char *name() const override { return "mpeg4"; }

  protected:
    std::vector<u8> encode_picture(const Frame &src,
                                   PictureType type) override;

  private:
    /** Everything the serial write phase needs to replay one MB. */
    struct MbRecord {
        enum Kind : u8 { kIntra, kInter, kSkip };
        Kind kind = kIntra;
        u8 mode = 0;  ///< mpeg4 mode code (kPInter16/kPInter4v/kB*)
        u8 cbp = 0;
        bool four = false;
        bool use_fwd = false;
        bool use_bwd = false;
        MotionVector mv[4];  // quarter-sample; fwd (4MV uses all four)
        MotionVector bwd;
        MotionVector pred_p;  ///< P-picture median predictor for MVDs
        s16 dc[6] = {};
        Coeff levels[6][64] = {};
    };

    /** Analysis-side row-scoped predictor state (B-picture chains). */
    struct RowState {
        MotionVector left_fwd;  // quarter-sample
        MotionVector left_bwd;
    };

    /** Write-side row/picture-scoped predictor state. */
    struct WriteState {
        int dc_pred[3] = {kDcPredReset, kDcPredReset, kDcPredReset};
        MotionVector left_fwd;
        MotionVector left_bwd;
        int pending_skips = 0;

        void
        reset_row()
        {
            dc_pred[0] = dc_pred[1] = dc_pred[2] = kDcPredReset;
            left_fwd = left_bwd = MotionVector{};
        }
    };

    void analyze_picture(const Frame &src, PictureType type);
    void analyze_mb(RowState &rs, const Frame &src, PictureType type,
                    int mbx, int mby, MbRecord &rec);
    void analyze_intra_mb(RowState &rs, const Frame &src, int mbx,
                          int mby, MbRecord &rec);
    void analyze_inter_mb(RowState &rs, const Frame &src,
                          PictureType type, int mode,
                          const MotionVector *mv, MotionVector bwd,
                          int mbx, int mby, MbRecord &rec);
    void write_mb(BitWriter &bw, WriteState &ws, const MbRecord &rec,
                  PictureType type) const;

    /** Median MV predictor from the decoded-MV grid (P pictures). */
    MotionVector median_pred(int mbx, int mby) const;
    MeResult estimate(const Frame &src, const Frame &ref, int x0, int y0,
                      int size, MotionVector pred_sub,
                      const std::vector<MotionVector> &cands) const;
    void predict_luma(const Frame &ref, int mbx, int mby,
                      const MotionVector *mv, bool four,
                      Pixel luma[16 * 16]) const;
    void predict_chroma(const Frame &ref, int mbx, int mby,
                        MotionVector cmv, Pixel cb[8 * 8],
                        Pixel cr[8 * 8]) const;
    void build_pred(const Frame &fwd_ref, const Frame *bwd_ref,
                    const MotionVector *fwd, bool four, MotionVector bwd,
                    int mbx, int mby, PredBuffers *pred) const;
    int intra_cost(const Frame &src, int mbx, int mby) const;
    std::vector<MotionVector> gather_candidates(int mbx, int mby) const;
    MotionVector quantize_mv(MotionVector mv) const;

    const Dsp &dsp_;
    MpegQuantizer intra_quant_;
    MpegQuantizer inter_quant_;
    const RunLevelCoder &intra_rl_;
    const RunLevelCoder &inter_rl_;
    MotionEstimator me_;
    /** approx >= 1: per-8x8 SAD below which the residual is coded as
     * all-zero without running fdct + quant (0 disables). */
    int dead_zone_sad_;
    int mb_w_;
    int mb_h_;

    Frame prev_anchor_;
    Frame last_anchor_;
    std::vector<MotionVector> anchor_mvs_;  ///< full-pel collocated
    std::vector<MotionVector> mv_grid_;     ///< quarter-pel, current
    Frame recon_;
    std::vector<MbRecord> records_;   ///< one per MB, raster order
    std::unique_ptr<ThreadPool> pool_;  ///< band pool (threads > 1)
    BitWriter bw_;           ///< persistent writer (capacity reuse)
    std::vector<u8> wbuf_;   ///< persistent finish_into() scratch

    /** Hints for the picture being analysed (read-only during the
     * wavefront phase), or null for full analysis. */
    std::shared_ptr<const PictureSideInfo> hint_pic_;

    const MbSideInfo *
    hint_mb(int mbx, int mby) const
    {
        return hint_pic_ ? &hint_pic_->at(mbx, mby) : nullptr;
    }
};

MotionVector
Mpeg4Encoder::quantize_mv(MotionVector mv) const
{
    if (config().qpel)
        return mv;
    // qpel disabled: restrict to half-sample positions (even values).
    return {static_cast<s16>(mv.x & ~1), static_cast<s16>(mv.y & ~1)};
}

MotionVector
Mpeg4Encoder::median_pred(int mbx, int mby) const
{
    const MotionVector zero{};
    const MotionVector a =
        mbx > 0 ? mv_grid_[mby * mb_w_ + mbx - 1] : zero;
    // Resilient rows must parse standalone: predict from the left
    // neighbour only, so a concealed row cannot skew the MVs of the
    // rows below it (the decoder mirrors this).
    if (mby == 0 || config().error_resilience)
        return a;
    const MotionVector b = mv_grid_[(mby - 1) * mb_w_ + mbx];
    const MotionVector c = mbx + 1 < mb_w_
                               ? mv_grid_[(mby - 1) * mb_w_ + mbx + 1]
                               : zero;
    return {median3(a.x, b.x, c.x), median3(a.y, b.y, c.y)};
}

std::vector<MotionVector>
Mpeg4Encoder::gather_candidates(int mbx, int mby) const
{
    std::vector<MotionVector> cands;
    cands.reserve(4);
    const int idx = mby * mb_w_ + mbx;
    if (mbx > 0) {
        const MotionVector l = mv_grid_[idx - 1];
        cands.push_back({static_cast<s16>(l.x >> 2),
                         static_cast<s16>(l.y >> 2)});
    }
    if (mby > 0) {
        const MotionVector t = mv_grid_[idx - mb_w_];
        cands.push_back({static_cast<s16>(t.x >> 2),
                         static_cast<s16>(t.y >> 2)});
        if (mbx + 1 < mb_w_) {
            const MotionVector tr = mv_grid_[idx - mb_w_ + 1];
            cands.push_back({static_cast<s16>(tr.x >> 2),
                             static_cast<s16>(tr.y >> 2)});
        }
    }
    cands.push_back(anchor_mvs_[idx]);
    return cands;
}

MeResult
Mpeg4Encoder::estimate(const Frame &src, const Frame &ref, int x0,
                       int y0, int size, MotionVector pred_sub,
                       const std::vector<MotionVector> &cands) const
{
    MeBlock blk;
    blk.cur = &src.luma();
    blk.ref = &ref.luma();
    blk.x0 = x0;
    blk.y0 = y0;
    blk.w = size;
    blk.h = size;
    const MeResult full = me_.epzs(blk, pred_sub, cands);
    const MotionVector start{static_cast<s16>(full.mv.x * 4),
                             static_cast<s16>(full.mv.y * 4)};
    const int approx = me_.params().approx;
    if (approx >= 1 && full.sad < me_.exit_threshold(blk)) {
        // Full-pel match already under the exit threshold: skip the
        // sub-sample refinement walk at this approximation level.
        MeResult r = full;
        r.mv = start;  // full-pel position, already qpel-legal
        return r;
    }
    auto predict = [&](MotionVector mv, Pixel *dst, int ds) {
        mc_qpel_tap(ref.luma(), x0, y0, mv, dst, ds, size, size, dsp_);
    };
    // approx >= 2 drops the quarter-sample pass: half-sample steps
    // only, halving the interpolation work per refined block.
    MeResult res =
        config().qpel && approx < 2
            ? subpel_refine(blk, start, pred_sub, me_.params(), {2, 1},
                            /*use_satd=*/false, predict)
            : subpel_refine(blk, start, pred_sub, me_.params(), {2},
                            /*use_satd=*/false, predict);
    res.mv = quantize_mv(res.mv);
    return res;
}

void
Mpeg4Encoder::predict_luma(const Frame &ref, int mbx, int mby,
                           const MotionVector *mv, bool four,
                           Pixel luma[16 * 16]) const
{
    const int lx = mbx * 16;
    const int ly = mby * 16;
    if (!four) {
        mc_qpel_tap(ref.luma(), lx, ly, mv[0], luma, 16, 16, 16, dsp_);
        return;
    }
    for (int b = 0; b < 4; ++b) {
        const int bx = lx + (b & 1) * 8;
        const int by = ly + (b >> 1) * 8;
        mc_qpel_tap(ref.luma(), bx, by, mv[b],
                      luma + (b >> 1) * 8 * 16 + (b & 1) * 8, 16, 8, 8,
                      dsp_);
    }
}

void
Mpeg4Encoder::predict_chroma(const Frame &ref, int mbx, int mby,
                             MotionVector cmv, Pixel cb[8 * 8],
                             Pixel cr[8 * 8]) const
{
    const int cx = mbx * 8;
    const int cy = mby * 8;
    mc_qpel_bilin(ref.cb(), cx, cy, cmv, cb, 8, 8, 8, dsp_);
    mc_qpel_bilin(ref.cr(), cx, cy, cmv, cr, 8, 8, 8, dsp_);
}

void
Mpeg4Encoder::build_pred(const Frame &fwd_ref, const Frame *bwd_ref,
                         const MotionVector *fwd, bool four,
                         MotionVector bwd, int mbx, int mby,
                         PredBuffers *pred) const
{
    predict_luma(fwd_ref, mbx, mby, fwd, four, pred->luma);
    const MotionVector cmv = four ? chroma_mv_from_4mv(fwd)
                                  : chroma_mv_from_qpel(fwd[0]);
    predict_chroma(fwd_ref, mbx, mby, cmv, pred->cb, pred->cr);
    if (bwd_ref != nullptr) {
        PredBuffers back;
        const MotionVector bmv[4] = {bwd, bwd, bwd, bwd};
        predict_luma(*bwd_ref, mbx, mby, bmv, false, back.luma);
        predict_chroma(*bwd_ref, mbx, mby, chroma_mv_from_qpel(bwd),
                       back.cb, back.cr);
        dsp_.avg_rect(pred->luma, 16, pred->luma, 16, back.luma, 16, 16,
                      16);
        dsp_.avg_rect(pred->cb, 8, pred->cb, 8, back.cb, 8, 8, 8);
        dsp_.avg_rect(pred->cr, 8, pred->cr, 8, back.cr, 8, 8, 8);
    }
}

int
Mpeg4Encoder::intra_cost(const Frame &src, int mbx, int mby) const
{
    const Plane &luma = src.luma();
    int sum = 0;
    for (int y = 0; y < 16; ++y) {
        const Pixel *row = luma.row(mby * 16 + y) + mbx * 16;
        for (int x = 0; x < 16; ++x)
            sum += row[x];
    }
    const int mean = (sum + 128) >> 8;
    int dev = 0;
    for (int y = 0; y < 16; ++y) {
        const Pixel *row = luma.row(mby * 16 + y) + mbx * 16;
        for (int x = 0; x < 16; ++x) {
            const int d = row[x] - mean;
            dev += d < 0 ? -d : d;
        }
    }
    return dev + ((me_.params().lambda16 * 96) >> 4);
}

std::vector<u8>
Mpeg4Encoder::encode_picture(const Frame &src, PictureType type)
{
    const CodecConfig &cfg = config();
    recon_ = new_frame(kRefBorder);
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    hint_pic_ = take_hints(src, type);
    analyze_picture(src, type);
    hint_pic_.reset();

    std::vector<u8> out;
    if (cfg.error_resilience) {
        // Resilient layout (see src/bitstream/resync.h): escaped
        // header, then per row a resync marker plus an escaped,
        // sentinel-terminated segment with row-scoped skip runs.
        bw_.clear();
        bw_.put_bits(static_cast<u32>(type), 2);
        bw_.put_bits(static_cast<u32>(cfg.qscale), 5);
        bw_.put_bit(cfg.qpel);
        bw_.put_bit(cfg.four_mv);
        bw_.put_bits(static_cast<u32>(src.poc() & 0xFFFF), 16);
        bw_.finish_into(&wbuf_);
        escape_emulation(wbuf_.data(), wbuf_.size(), &out);

        for (int mby = 0; mby < mb_h_; ++mby) {
            WriteState ws;
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                write_mb(bw_, ws, records_[mby * mb_w_ + mbx], type);
            if (type != PictureType::kI && ws.pending_skips > 0)
                write_ue(bw_, static_cast<u32>(ws.pending_skips));
            bw_.put_bits(kRowSentinel, 8);
            bw_.finish_into(&wbuf_);
            append_resync_marker(&out, mby);
            escape_emulation(wbuf_.data(), wbuf_.size(), &out);
        }
    } else {
        bw_.clear();
        bw_.put_bits(static_cast<u32>(type), 2);
        bw_.put_bits(static_cast<u32>(cfg.qscale), 5);
        bw_.put_bit(cfg.qpel);
        bw_.put_bit(cfg.four_mv);
        bw_.put_bits(static_cast<u32>(src.poc() & 0xFFFF), 16);
        WriteState ws;
        for (int mby = 0; mby < mb_h_; ++mby) {
            ws.reset_row();
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                write_mb(bw_, ws, records_[mby * mb_w_ + mbx], type);
        }
        if (type != PictureType::kI)
            write_ue(bw_, static_cast<u32>(ws.pending_skips));
        bw_.finish_into(&out);
    }

    recon_.extend_borders();
    if (type != PictureType::kB) {
        prev_anchor_ = std::move(last_anchor_);
        last_anchor_ = std::move(recon_);
        for (size_t i = 0; i < mv_grid_.size(); ++i)
            anchor_mvs_[i] = {static_cast<s16>(mv_grid_[i].x >> 2),
                              static_cast<s16>(mv_grid_[i].y >> 2)};
    }
    return out;
}

void
Mpeg4Encoder::analyze_picture(const Frame &src, PictureType type)
{
    if (pool_ == nullptr || mb_h_ < 2) {
        for (int mby = 0; mby < mb_h_; ++mby) {
            RowState rs{};
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                analyze_mb(rs, src, type, mbx, mby,
                           records_[mby * mb_w_ + mbx]);
        }
        return;
    }

    // Wavefront bands: MB (x, y) may read mv_grid_ above and
    // above-right (median predictor + ME candidates), so row y-1 must
    // be done through column x+1 first.
    WavefrontScheduler wf(mb_h_, mb_w_);
    parallel_for(*pool_, mb_h_, [&](int mby, int) {
        WavefrontRowGuard guard(wf, mby);
        RowState rs{};
        for (int mbx = 0; mbx < mb_w_; ++mbx) {
            wf.wait_above(mby, mbx);
            analyze_mb(rs, src, type, mbx, mby,
                       records_[mby * mb_w_ + mbx]);
            wf.publish(mby, mbx + 1);
        }
    });
}

void
Mpeg4Encoder::analyze_mb(RowState &rs, const Frame &src,
                         PictureType type, int mbx, int mby,
                         MbRecord &rec)
{
    if (type == PictureType::kI) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }

    // Analysis-reuse hints (see src/codec/side_info.h): decode-side
    // intra goes straight to intra, a decode-side vector is seeded as
    // a search candidate and the intra trial plus the 4MV refinement
    // are pruned, and B MBs search only the hinted direction(s). Each
    // pruned branch keeps a legal fallback; a null hint runs the
    // original code path bit-for-bit.
    const MbSideInfo *hint = hint_mb(mbx, mby);
    if (hint != nullptr && hint->mode == MbSideInfo::kIntra) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }
    const int icost =
        hint != nullptr ? INT32_MAX : intra_cost(src, mbx, mby);

    if (type == PictureType::kP) {
        const MotionVector pred = median_pred(mbx, mby);
        std::vector<MotionVector> cands = gather_candidates(mbx, mby);
        if (hint != nullptr)
            cands.push_back(hint_full_pel(hint->fwd));
        const MeResult r16 = estimate(src, last_anchor_, mbx * 16,
                                      mby * 16, 16, pred, cands);

        MotionVector mv[4] = {r16.mv, r16.mv, r16.mv, r16.mv};
        bool four = false;
        // The hint is a 16x16 seed, so trust it and skip the 4MV
        // split trial (the decoder's 4MV collapses to one vector).
        // approx >= 2 also prunes the trial — four separate 8x8
        // searches plus refinements for a rate win the coarse
        // quantiser rarely cashes in — unless the 16x16 match is bad.
        const bool try_four_mv =
            config().four_mv && hint == nullptr &&
            (me_.params().approx < 2 ||
             r16.sad >= (256 << me_.params().approx) * 4);
        if (try_four_mv) {
            // 4MV: refine each 8x8 quadrant; adopt if the summed cost
            // beats 16x16 plus the extra vector overhead.
            MeResult sub[4];
            int cost4 = (me_.params().lambda16 * 40) >> 4;
            std::vector<MotionVector> c8 = cands;
            c8.push_back({static_cast<s16>(r16.mv.x >> 2),
                          static_cast<s16>(r16.mv.y >> 2)});
            for (int b = 0; b < 4; ++b) {
                sub[b] = estimate(src, last_anchor_,
                                  mbx * 16 + (b & 1) * 8,
                                  mby * 16 + (b >> 1) * 8, 8, pred, c8);
                cost4 += sub[b].cost;
            }
            if (cost4 < r16.cost) {
                four = true;
                for (int b = 0; b < 4; ++b)
                    mv[b] = sub[b].mv;
            }
        }

        const int inter_cost = four ? 0 : r16.cost;  // four => chosen
        if (!four && icost < inter_cost) {
            analyze_intra_mb(rs, src, mbx, mby, rec);
            return;
        }
        analyze_inter_mb(rs, src, type,
                         four ? mpeg4::kPInter4v : mpeg4::kPInter16, mv,
                         {}, mbx, mby, rec);
        return;
    }

    // B picture: a single-direction hint prunes the opposite estimate
    // and the bi-prediction build.
    const bool want_fwd =
        hint == nullptr || hint->mode != MbSideInfo::kInterBwd;
    const bool want_bwd =
        hint == nullptr || hint->mode != MbSideInfo::kInterFwd;

    MeResult fwd;
    MeResult bwd;
    if (want_fwd) {
        std::vector<MotionVector> cands = gather_candidates(mbx, mby);
        if (hint != nullptr)
            cands.push_back(hint_full_pel(hint->fwd));
        fwd = estimate(src, prev_anchor_, mbx * 16, mby * 16, 16,
                       rs.left_fwd, cands);
    }
    if (want_bwd) {
        std::vector<MotionVector> cands = gather_candidates(mbx, mby);
        if (hint != nullptr)
            cands.push_back(hint_full_pel(hint->bwd));
        bwd = estimate(src, last_anchor_, mbx * 16, mby * 16, 16,
                       rs.left_bwd, cands);
    }

    int best;
    int best_cost;
    if (want_fwd && want_bwd) {
        PredBuffers bi;
        const MotionVector fmv[4] = {fwd.mv, fwd.mv, fwd.mv, fwd.mv};
        build_pred(prev_anchor_, &last_anchor_, fmv, false, bwd.mv, mbx,
                   mby, &bi);
        const Plane &luma = src.luma();
        const int bi_sad = dsp_.sad16x16(luma.row(mby * 16) + mbx * 16,
                                         luma.stride(), bi.luma, 16);
        const int bi_cost =
            bi_sad +
            mv_rate_cost(fwd.mv, rs.left_fwd, me_.params().lambda16) +
            mv_rate_cost(bwd.mv, rs.left_bwd, me_.params().lambda16);

        best = mpeg4::kBBi;
        best_cost = bi_cost;
        if (fwd.cost < best_cost) {
            best = mpeg4::kBFwd;
            best_cost = fwd.cost;
        }
        if (bwd.cost < best_cost) {
            best = mpeg4::kBBwd;
            best_cost = bwd.cost;
        }
    } else if (want_fwd) {
        best = mpeg4::kBFwd;
        best_cost = fwd.cost;
    } else {
        best = mpeg4::kBBwd;
        best_cost = bwd.cost;
    }
    if (icost < best_cost) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }
    const MotionVector bmv[4] = {fwd.mv, fwd.mv, fwd.mv, fwd.mv};
    analyze_inter_mb(rs, src, type, best, bmv, bwd.mv, mbx, mby, rec);
}

void
Mpeg4Encoder::analyze_intra_mb(RowState &rs, const Frame &src, int mbx,
                               int mby, MbRecord &rec)
{
    rec.kind = MbRecord::kIntra;
    const int lx = mbx * 16;
    const int ly = mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        const Plane &src_plane = src.plane(comp);
        Plane &rec_plane = recon_.plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : mby * 8;

        Coeff *blk = rec.levels[b];
        for (int yy = 0; yy < 8; ++yy) {
            const Pixel *row = src_plane.row(y + yy) + x;
            for (int xx = 0; xx < 8; ++xx)
                blk[yy * 8 + xx] = row[xx];
        }
        dsp_.fdct8x8(blk);
        const int dc_level = clamp(div_round(blk[0], kDcStep), 0, 255);
        blk[0] = 0;
        intra_quant_.quantize(blk);
        rec.dc[b] = static_cast<s16>(dc_level);

        Pixel *dst = rec_plane.row(y) + x;
        zero_block8(dst, rec_plane.stride());
        mpeg_recon_block(blk, intra_quant_, dc_level * kDcStep, dst,
                         rec_plane.stride(), dsp_);
    }
    rs.left_fwd = rs.left_bwd = MotionVector{};
    mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
}

void
Mpeg4Encoder::analyze_inter_mb(RowState &rs, const Frame &src,
                               PictureType type, int mode,
                               const MotionVector *mv, MotionVector bwd,
                               int mbx, int mby, MbRecord &rec)
{
    const bool is_b = type == PictureType::kB;
    const bool four = !is_b && mode == mpeg4::kPInter4v;
    bool use_fwd = true;
    bool use_bwd = false;
    MotionVector fwd = mv[0];
    if (is_b) {
        use_fwd = mode == mpeg4::kBFwd || mode == mpeg4::kBBi;
        use_bwd = mode == mpeg4::kBBwd || mode == mpeg4::kBBi;
        if (!use_fwd)
            fwd = {};
        if (!use_bwd)
            bwd = {};
    }

    PredBuffers pred;
    if (is_b) {
        if (!use_fwd) {
            const MotionVector bmv[4] = {bwd, bwd, bwd, bwd};
            build_pred(last_anchor_, nullptr, bmv, false, {}, mbx, mby,
                       &pred);
        } else {
            const MotionVector fmv[4] = {fwd, fwd, fwd, fwd};
            build_pred(prev_anchor_, use_bwd ? &last_anchor_ : nullptr,
                       fmv, false, bwd, mbx, mby, &pred);
        }
    } else {
        build_pred(last_anchor_, nullptr, mv, four, {}, mbx, mby,
                   &pred);
    }

    int cbp = 0;
    const int lx = mbx * 16;
    const int ly = mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        const Plane &src_plane = src.plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : mby * 8;
        const Pixel *pp;
        int ps;
        if (b < 4) {
            pp = pred.luma + (b >> 1) * 8 * 16 + (b & 1) * 8;
            ps = 16;
        } else {
            pp = b == 4 ? pred.cb : pred.cr;
            ps = 8;
        }
        if (dead_zone_sad_ > 0 &&
            dsp_.sad_rect(src_plane.row(y) + x, src_plane.stride(), pp,
                          ps, 8, 8) < dead_zone_sad_) {
            // Near-zero residual: skip fdct + quant, leave the cbp bit
            // clear (recon = prediction, as for any all-zero block).
            continue;
        }
        dsp_.sub_rect(rec.levels[b], 8, src_plane.row(y) + x,
                      src_plane.stride(), pp, ps, 8, 8);
        if (me_.params().approx >= 3)
            fdct8x8_low4(rec.levels[b]);
        else
            dsp_.fdct8x8(rec.levels[b]);
        if (inter_quant_.quantize(rec.levels[b]) != 0)
            cbp |= 1 << b;
    }

    const bool skippable =
        cbp == 0 && !four &&
        (is_b ? (mode == mpeg4::kBBi && fwd == MotionVector{} &&
                 bwd == MotionVector{})
              : fwd == MotionVector{});
    if (skippable) {
        rec.kind = MbRecord::kSkip;
        rs.left_fwd = rs.left_bwd = MotionVector{};
        mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
    } else {
        rec.kind = MbRecord::kInter;
        rec.mode = static_cast<u8>(mode);
        rec.cbp = static_cast<u8>(cbp);
        rec.four = four;
        rec.use_fwd = use_fwd;
        rec.use_bwd = use_bwd;
        for (int b = 0; b < 4; ++b)
            rec.mv[b] = is_b ? (b == 0 ? fwd : MotionVector{}) : mv[b];
        rec.bwd = bwd;
        if (is_b) {
            rs.left_fwd = use_fwd ? fwd : MotionVector{};
            rs.left_bwd = use_bwd ? bwd : MotionVector{};
        } else {
            // Recorded at the same sequence point the serial encoder
            // evaluated it: after the left MB's mv_grid_ update,
            // before this MB's own.
            rec.pred_p = median_pred(mbx, mby);
            mv_grid_[mby * mb_w_ + mbx] = mv[0];
        }
    }

    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        Plane &rec_plane = recon_.plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : mby * 8;
        const Pixel *pp;
        int ps;
        if (b < 4) {
            pp = pred.luma + (b >> 1) * 8 * 16 + (b & 1) * 8;
            ps = 16;
        } else {
            pp = b == 4 ? pred.cb : pred.cr;
            ps = 8;
        }
        Pixel *dst = rec_plane.row(y) + x;
        dsp_.copy_rect(dst, rec_plane.stride(), pp, ps, 8, 8);
        if (cbp & (1 << b)) {
            mpeg_recon_block(rec.levels[b], inter_quant_, -1, dst,
                             rec_plane.stride(), dsp_);
        }
    }
}

void
Mpeg4Encoder::write_mb(BitWriter &bw, WriteState &ws,
                       const MbRecord &rec, PictureType type) const
{
    const bool is_b = type == PictureType::kB;

    if (rec.kind == MbRecord::kSkip) {
        ++ws.pending_skips;
        ws.left_fwd = ws.left_bwd = MotionVector{};
        ws.dc_pred[0] = ws.dc_pred[1] = ws.dc_pred[2] = kDcPredReset;
        return;
    }

    if (rec.kind == MbRecord::kIntra) {
        if (type != PictureType::kI) {
            write_ue(bw, static_cast<u32>(ws.pending_skips));
            ws.pending_skips = 0;
            write_ue(bw, is_b ? static_cast<u32>(mpeg4::kBIntra)
                              : static_cast<u32>(mpeg4::kPIntra));
        }
        for (int b = 0; b < 6; ++b) {
            const int comp = b < 4 ? 0 : b - 3;
            write_se(bw, rec.dc[b] - ws.dc_pred[comp]);
            ws.dc_pred[comp] = rec.dc[b];
            intra_rl_.encode_block(bw, rec.levels[b], 1);
        }
        ws.left_fwd = ws.left_bwd = MotionVector{};
        return;
    }

    write_ue(bw, static_cast<u32>(ws.pending_skips));
    ws.pending_skips = 0;
    write_ue(bw, static_cast<u32>(rec.mode));
    if (is_b) {
        if (rec.use_fwd) {
            write_se(bw, rec.mv[0].x - ws.left_fwd.x);
            write_se(bw, rec.mv[0].y - ws.left_fwd.y);
        }
        if (rec.use_bwd) {
            write_se(bw, rec.bwd.x - ws.left_bwd.x);
            write_se(bw, rec.bwd.y - ws.left_bwd.y);
        }
        ws.left_fwd = rec.use_fwd ? rec.mv[0] : MotionVector{};
        ws.left_bwd = rec.use_bwd ? rec.bwd : MotionVector{};
    } else {
        const int count = rec.four ? 4 : 1;
        for (int b = 0; b < count; ++b) {
            write_se(bw, rec.mv[b].x - rec.pred_p.x);
            write_se(bw, rec.mv[b].y - rec.pred_p.y);
        }
    }
    bw.put_bits(rec.cbp, 6);
    for (int b = 0; b < 6; ++b) {
        if (rec.cbp & (1 << b))
            inter_rl_.encode_block(bw, rec.levels[b], 0);
    }
    ws.dc_pred[0] = ws.dc_pred[1] = ws.dc_pred[2] = kDcPredReset;
}

}  // namespace

std::unique_ptr<VideoEncoder>
create_mpeg4_encoder(const CodecConfig &config)
{
    HDVB_CHECK(config.validate().is_ok());
    return std::make_unique<Mpeg4Encoder>(config);
}

}  // namespace hdvb
