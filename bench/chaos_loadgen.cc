/**
 * @file
 * Chaos harness for the serve layer: the blast-radius half of the
 * robustness story, where server_loadgen is the clean-path half.
 *
 * Two passes against identical scheduler options and identical
 * "unaffected" traffic (live + vod encode sessions, thumbnail decode
 * sessions, all byte-deterministic):
 *
 *  - a *baseline* pass with no faults, which records each unaffected
 *    session's output digest and per-class latency percentiles;
 *  - a *chaos* pass that adds seeded, deterministic fault injection on
 *    top of the same traffic: decode sessions fed header-targeted
 *    corrupt streams (StreamCorrupter, seeds pre-validated to error
 *    without resilience), watchdog-stalled encode sessions that wedge
 *    every scheduler worker (the burst that trips the overload
 *    shedder), per-frame transient faults absorbed by retry, and an
 *    admission-churn thread that expects kUnavailable while the
 *    scheduler sheds.
 *
 * The pass is also an audit, and the process exits non-zero when any
 * containment property fails:
 *  - blast radius: exactly the intended victims fail, nothing else;
 *  - byte identity: every unaffected session's output digest matches
 *    the baseline pass bit for bit;
 *  - zero lost frames outside the victims;
 *  - refunds: the admission ledger returns to zero although the failed
 *    victims are never close()d, and the shared arena drains;
 *  - the lost-ticket audit: every submitted ticket of every session
 *    (victims included) comes back as exactly one TicketResult.
 *
 * Results go to a schema-versioned hdvb-chaos/1 JSON document with
 * fault counts, blast radius, frames lost, shed-episode
 * time-to-recovery, and per-class fault-vs-clean latency percentiles.
 * --smoke shrinks frame counts for CI.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/benchmark.h"
#include "core/report.h"
#include "fault/deadline.h"
#include "fault/fault.h"
#include "metrics/timer.h"
#include "serve/scheduler.h"
#include "synth/synth.h"

using namespace hdvb;

namespace {

constexpr int kWidth = 96;
constexpr int kHeight = 64;
constexpr int kWorkers = 2;          ///< fixed: the stall victims must
                                     ///< be able to wedge every worker
constexpr int kPerClass = 2;         ///< unaffected sessions per class
constexpr int kCorruptVictims = 4;
constexpr int kStallVictims = 2;     ///< == kWorkers, by design
constexpr int kChurnAttempts = 3;
constexpr int kShedQueueDepth = 6;

CodecConfig
tiny_config(CodecId codec)
{
    CodecConfig cfg = benchmark_config(codec, Resolution::k576p25,
                                       best_simd_level());
    cfg.width = kWidth;
    cfg.height = kHeight;
    return cfg;
}

CodecConfig
victim_config()
{
    CodecConfig cfg = tiny_config(CodecId::kMpeg2);
    cfg.error_resilience = false;  // no recovery path: corruption kills
    return cfg;
}

bool
wait_until(const std::function<bool()> &predicate,
           double timeout_seconds = 10.0)
{
    const auto give_up =
        Deadline::Clock::now() +
        std::chrono::duration<double>(timeout_seconds);
    while (!predicate()) {
        if (Deadline::Clock::now() >= give_up)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

// ---------------------------------------------------------------------
// Output digests: FNV-1a over every output byte, so "byte-identical to
// the baseline pass" is one u64 comparison per session.
// ---------------------------------------------------------------------

struct Digest {
    u64 hash = 14695981039346656037ull;

    void
    bytes(const u8 *data, size_t size)
    {
        for (size_t i = 0; i < size; ++i) {
            hash ^= data[i];
            hash *= 1099511628211ull;
        }
    }

    void
    number(s64 v)
    {
        bytes(reinterpret_cast<const u8 *>(&v), sizeof(v));
    }

    void
    packet(const Packet &p)
    {
        number(static_cast<s64>(p.data.size()));
        if (!p.data.empty())
            bytes(p.data.data(), p.data.size());
    }

    void
    frame(const Frame &f)
    {
        number(f.poc());
        for (int plane = 0; plane < 3; ++plane) {
            const Plane &pl = f.plane(plane);
            for (int y = 0; y < pl.height(); ++y)
                bytes(pl.row(y), static_cast<size_t>(pl.width()));
        }
    }
};

u64
digest_session_output(CodecSession *session)
{
    Digest digest;
    if (session->is_encode()) {
        std::vector<Packet> packets;
        session->poll(&packets);
        for (const Packet &p : packets)
            digest.packet(p);
    } else {
        std::vector<Frame> frames;
        session->poll(&frames);
        for (const Frame &f : frames)
            digest.frame(f);
    }
    return digest.hash;
}

// ---------------------------------------------------------------------
// Deterministic traffic shared by both passes.
// ---------------------------------------------------------------------

CodecId
codec_for(int session_index)
{
    return kAllCodecs[session_index % kCodecCount];
}

/** Encode the thumbnail replay streams and the corrupt victims' clean
 * source stream once, up front. */
Status
prepare_streams(int frames, std::vector<Packet> streams[kCodecCount],
                EncodedStream *victim_clean)
{
    for (CodecId codec : kAllCodecs) {
        const CodecConfig cfg = tiny_config(codec);
        StatusOr<std::unique_ptr<VideoEncoder>> encoder =
            make_encoder(codec, cfg);
        if (!encoder.is_ok())
            return encoder.status();
        SyntheticSource source(SequenceId::kRushHour, kWidth, kHeight);
        std::vector<Packet> *out = &streams[static_cast<int>(codec)];
        for (int i = 0; i < frames; ++i) {
            const Status status =
                encoder.value()->encode(source.next(), out);
            if (!status.is_ok())
                return status;
        }
        const Status status = encoder.value()->flush(out);
        if (!status.is_ok())
            return status;
    }

    const CodecConfig cfg = victim_config();
    StatusOr<std::unique_ptr<VideoEncoder>> encoder =
        make_encoder(CodecId::kMpeg2, cfg);
    if (!encoder.is_ok())
        return encoder.status();
    SyntheticSource source(SequenceId::kBlueSky, kWidth, kHeight);
    victim_clean->codec = codec_name(CodecId::kMpeg2);
    victim_clean->width = cfg.width;
    victim_clean->height = cfg.height;
    for (int i = 0; i < 9; ++i) {
        const Status status =
            encoder.value()->encode(source.next(), &victim_clean->packets);
        if (!status.is_ok())
            return status;
    }
    return encoder.value()->flush(&victim_clean->packets);
}

/** True when a direct (non-session) decode of @p stream errors —
 * i.e. the fault plan really is terminal for a non-resilient decoder. */
bool
plan_is_terminal(const EncodedStream &stream)
{
    StatusOr<std::unique_ptr<VideoDecoder>> decoder =
        make_decoder(CodecId::kMpeg2, victim_config());
    if (!decoder.is_ok())
        return false;
    std::vector<Frame> frames;
    for (const Packet &packet : stream.packets) {
        if (!decoder.value()->decode(packet, &frames).is_ok())
            return true;
    }
    return false;
}

/** Header-targeted damage with @p seed; the caller pre-validates the
 * seed against plan_is_terminal, so the chaos pass never depends on
 * luck. */
FaultPlan
severe_plan(u64 seed)
{
    FaultPlan plan;
    plan.seed = seed;
    plan.garble_density = 0.5;
    plan.target_headers = true;
    plan.header_bytes = 4;
    plan.truncate_fraction = 0.5;
    plan.protect_first_packet = true;  // fail mid-stream, not at frame 0
    return plan;
}

struct ClassPlan {
    SessionClass cls;
    bool encode = true;
    size_t queue_capacity = 16;
    double pace_seconds = 0.0;
};

/** One pass's outcome. Unaffected sessions are keyed by name so the
 * chaos pass can diff its digests against the baseline's. */
struct PassResult {
    std::map<std::string, u64> digests;
    std::vector<double> latencies[kSessionClassCount];
    s64 submitted[kSessionClassCount] = {};
    s64 completed[kSessionClassCount] = {};
    SchedulerStats sched;
    double wall_seconds = 0.0;

    // Chaos-only fault ledger.
    s64 corrupt_failed = 0;
    s64 stall_failed = 0;
    s64 transient_injected = 0;
    s64 churn_rejected = 0;
    s64 frames_lost_victims = 0;
    s64 frames_lost_unaffected = 0;
    s64 unexpected_failures = 0;
    bool refund_balanced = true;
    bool arena_drained = true;
    bool audit_clean = true;
};

/** Submit one input with retry on the transient kUnavailable
 * (backpressure or shedding); returns false on a terminal rejection
 * (e.g. the sticky status of a failed session). */
template <typename Payload>
bool
submit_with_retry(CodecSession *session, const Payload &payload)
{
    for (;;) {
        const StatusOr<Ticket> ticket = session->submit(payload);
        if (ticket.is_ok())
            return true;
        if (ticket.status().code() != StatusCode::kUnavailable)
            return false;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

/** Fold a drained session into the audit: per-ticket accounting, lost
 * frames, latencies. Returns false when a ticket went missing. */
bool
settle_session(CodecSession *session, std::vector<double> *latencies,
               s64 *completed, s64 *lost)
{
    s64 seen = 0;
    for (const TicketResult &result : session->take_results()) {
        ++seen;
        if (result.status.is_ok()) {
            if (completed != nullptr)
                ++*completed;
            if (latencies != nullptr)
                latencies->push_back(result.latency_seconds);
        } else if (result.status.code() == StatusCode::kDataLoss &&
                   lost != nullptr) {
            ++*lost;
        }
    }
    const SessionCounters counters = session->counters();
    if (seen != counters.submitted) {
        std::fprintf(stderr,
                     "session %s lost tickets: %lld submitted, %lld "
                     "results\n",
                     session->name().c_str(),
                     static_cast<long long>(counters.submitted),
                     static_cast<long long>(seen));
        return false;
    }
    return true;
}

/**
 * Run one pass. When @p chaos is false only the unaffected population
 * runs; when true, the fault injectors run on top of it.
 */
bool
run_pass(bool chaos, int frames,
         const std::vector<Packet> streams[kCodecCount],
         const EncodedStream &victim_clean,
         const std::vector<u64> &corrupt_seeds, PassResult *out)
{
    SchedulerOptions options;
    options.workers = kWorkers;
    options.batch_frames = 4;
    options.shed_queue_depth = kShedQueueDepth;
    SessionScheduler sched(options);
    bool clean = true;

    const ClassPlan plans[kSessionClassCount] = {
        {SessionClass::kLive, true, /*queue=*/4, /*pace=*/0.001},
        {SessionClass::kVod, true, /*queue=*/16, 0.0},
        {SessionClass::kThumbnail, false, /*queue=*/8, 0.0},
    };

    std::vector<std::shared_ptr<CodecSession>>
        unaffected[kSessionClassCount];
    for (int c = 0; c < kSessionClassCount; ++c) {
        for (int s = 0; s < kPerClass; ++s) {
            const CodecId codec = codec_for(s);
            SessionConfig config;
            config.name =
                std::string(session_class_name(plans[c].cls)) + "-" +
                codec_name(codec) + "-" + std::to_string(s);
            config.priority = plans[c].cls;
            config.codec_config = tiny_config(codec);
            config.queue_capacity = plans[c].queue_capacity;
            StatusOr<std::shared_ptr<CodecSession>> session =
                plans[c].encode
                    ? sched.open_encode(
                          make_encoder(codec, config.codec_config)
                              .value(),
                          config)
                    : sched.open_decode(
                          make_decoder(codec, config.codec_config)
                              .value(),
                          config);
            if (!session.is_ok()) {
                std::fprintf(stderr, "admission failed: %s\n",
                             session.status().to_string().c_str());
                return false;
            }
            unaffected[c].push_back(std::move(session.value()));
        }
    }

    // ---- chaos-only victims, admitted before traffic starts ----
    std::vector<std::shared_ptr<CodecSession>> corrupt_victims;
    std::vector<std::shared_ptr<CodecSession>> stall_victims;
    std::shared_ptr<CodecSession> transient;
    std::mutex transient_mu;
    std::map<Ticket, int> transient_attempts;
    if (chaos) {
        for (int v = 0; v < kCorruptVictims; ++v) {
            SessionConfig config;
            config.name = "victim-corrupt-" + std::to_string(v);
            config.priority = SessionClass::kVod;
            config.codec_config = victim_config();
            config.queue_capacity = victim_clean.packets.size() + 2;
            StatusOr<std::shared_ptr<CodecSession>> session =
                sched.open_decode(
                    make_decoder(CodecId::kMpeg2, config.codec_config)
                        .value(),
                    config);
            if (!session.is_ok())
                return false;
            corrupt_victims.push_back(std::move(session.value()));
        }
        for (int v = 0; v < kStallVictims; ++v) {
            SessionConfig config;
            config.name = "victim-stall-" + std::to_string(v);
            config.priority = SessionClass::kLive;
            config.codec_config = tiny_config(CodecId::kMpeg2);
            config.queue_capacity = 8;
            config.stall_timeout_seconds = 0.05;
            // Wedge on the very first frame, far past the stall
            // budget: the worker stays pinned for the full sleep, so
            // with kStallVictims == kWorkers every worker is wedged at
            // once and the backlog burst below is deterministic.
            config.before_frame_hook = [](Ticket ticket) {
                if (ticket == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(400));
                }
                return Status::ok();
            };
            StatusOr<std::shared_ptr<CodecSession>> session =
                sched.open_encode(
                    make_encoder(CodecId::kMpeg2, config.codec_config)
                        .value(),
                    config);
            if (!session.is_ok())
                return false;
            stall_victims.push_back(std::move(session.value()));
        }

        SessionConfig config;
        config.name = "transient-blips";
        config.priority = SessionClass::kVod;
        config.codec_config = tiny_config(CodecId::kMpeg2);
        config.queue_capacity = 16;
        config.retry.max_attempts = 3;
        config.retry.initial_backoff_seconds = 1e-4;
        // Every third ticket fails its first attempt with the
        // transient kUnavailable; retry must absorb every one.
        config.before_frame_hook = [&transient_mu, &transient_attempts,
                                    out](Ticket ticket) {
            std::lock_guard<std::mutex> lock(transient_mu);
            if (ticket % 3 == 0 && transient_attempts[ticket]++ == 0) {
                ++out->transient_injected;
                return Status::unavailable("injected transient fault");
            }
            return Status::ok();
        };
        StatusOr<std::shared_ptr<CodecSession>> session =
            sched.open_encode(
                make_encoder(CodecId::kMpeg2, config.codec_config)
                    .value(),
                config);
        if (!session.is_ok())
            return false;
        transient = std::move(session.value());
    }

    WallTimer wall;
    wall.start();

    // Wedge first: both workers pinned before the clean feeders start
    // pushing, so the backlog burst and the shed episode it trips are
    // not a race.
    if (chaos) {
        for (const std::shared_ptr<CodecSession> &victim : stall_victims)
            for (int i = 0; i < 6; ++i)
                submit_with_retry(victim.get(), SyntheticSource(
                    SequenceId::kRushHour, kWidth, kHeight).at(i));
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    std::vector<std::thread> threads;
    bool feed_ok[kSessionClassCount] = {true, true, true};
    for (int c = 0; c < kSessionClassCount; ++c) {
        threads.emplace_back([&, c] {
            SyntheticSource source(SequenceId::kRushHour, kWidth,
                                   kHeight);
            for (int i = 0; i < frames; ++i) {
                for (size_t s = 0; s < unaffected[c].size(); ++s) {
                    CodecSession *session = unaffected[c][s].get();
                    const bool ok =
                        plans[c].encode
                            ? submit_with_retry(session, source.at(i))
                            : submit_with_retry(
                                  session,
                                  streams[static_cast<int>(codec_for(
                                      static_cast<int>(s)))]
                                      [static_cast<size_t>(i)]);
                    if (!ok) {
                        feed_ok[c] = false;
                        return;
                    }
                    ++out->submitted[c];
                }
                if (plans[c].pace_seconds > 0.0) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            plans[c].pace_seconds));
                }
            }
        });
    }

    if (chaos) {
        // Corrupt streams through their victims, concurrently with the
        // clean traffic.
        threads.emplace_back([&] {
            for (size_t v = 0; v < corrupt_victims.size(); ++v) {
                const EncodedStream bad = corrupted_copy(
                    victim_clean, severe_plan(corrupt_seeds[v]));
                for (const Packet &packet : bad.packets) {
                    if (!submit_with_retry(corrupt_victims[v].get(),
                                           packet))
                        break;  // sticky failure: session already dead
                }
                corrupt_victims[v]->drain();
            }
        });
        // Admission churn while the scheduler sheds: every attempt
        // must bounce with the retryable kUnavailable.
        threads.emplace_back([&] {
            if (!wait_until([&] { return sched.stats().shed_level > 0; },
                            5.0))
                return;  // audited via shed_episodes below
            for (int i = 0; i < kChurnAttempts; ++i) {
                SessionConfig config;
                config.name = "churn-" + std::to_string(i);
                config.codec_config = tiny_config(CodecId::kMpeg2);
                StatusOr<std::shared_ptr<CodecSession>> refused =
                    sched.open_encode(
                        make_encoder(CodecId::kMpeg2,
                                     config.codec_config)
                            .value(),
                        config);
                if (!refused.is_ok() &&
                    refused.status().code() == StatusCode::kUnavailable)
                    ++out->churn_rejected;
            }
        });
        // The transient-blip stream.
        threads.emplace_back([&] {
            SyntheticSource source(SequenceId::kBlueSky, kWidth,
                                   kHeight);
            for (int i = 0; i < frames; ++i) {
                if (!submit_with_retry(transient.get(), source.at(i)))
                    return;
            }
        });
    }

    for (std::thread &t : threads)
        t.join();
    for (int c = 0; c < kSessionClassCount; ++c)
        clean = clean && feed_ok[c];

    // ---- settle the victims: every one must have failed, alone ----
    if (chaos) {
        for (const std::shared_ptr<CodecSession> &victim :
             corrupt_victims) {
            if (wait_until([&] { return victim->failed(); }))
                ++out->corrupt_failed;
            else
                std::fprintf(stderr, "%s did not fail\n",
                             victim->name().c_str());
            out->audit_clean =
                settle_session(victim.get(), nullptr, nullptr,
                               &out->frames_lost_victims) &&
                out->audit_clean;
        }
        for (const std::shared_ptr<CodecSession> &victim :
             stall_victims) {
            if (wait_until([&] { return victim->failed(); }) &&
                victim->session_status().code() ==
                    StatusCode::kDeadlineExceeded)
                ++out->stall_failed;
            else
                std::fprintf(stderr, "%s did not stall out\n",
                             victim->name().c_str());
            out->audit_clean =
                settle_session(victim.get(), nullptr, nullptr,
                               &out->frames_lost_victims) &&
                out->audit_clean;
        }
        const Status transient_close = transient->close();
        if (!transient_close.is_ok() || transient->failed()) {
            std::fprintf(stderr,
                         "transient session did not survive: %s\n",
                         transient_close.to_string().c_str());
            ++out->unexpected_failures;
        }
        out->audit_clean =
            settle_session(transient.get(), nullptr, nullptr, nullptr) &&
            out->audit_clean;
    }

    // ---- settle the unaffected population ----
    for (int c = 0; c < kSessionClassCount; ++c) {
        for (const std::shared_ptr<CodecSession> &session :
             unaffected[c]) {
            const Status status = session->close();
            if (!status.is_ok() || session->failed()) {
                std::fprintf(stderr, "unaffected %s failed: %s\n",
                             session->name().c_str(),
                             status.to_string().c_str());
                ++out->unexpected_failures;
            }
            out->audit_clean =
                settle_session(session.get(), &out->latencies[c],
                               &out->completed[c],
                               &out->frames_lost_unaffected) &&
                out->audit_clean;
            out->digests[session->name()] =
                digest_session_output(session.get());
        }
    }
    wall.stop();
    out->wall_seconds = wall.seconds();

    // ---- refund audit: the ledger must return to zero although the
    // failed victims are never close()d (their charge was refunded at
    // failure time, the others' at close). ----
    out->refund_balanced = wait_until(
        [&] { return sched.stats().estimated_bytes == 0; });
    if (!out->refund_balanced)
        std::fprintf(stderr, "admission refund imbalance: %zu bytes\n",
                     sched.stats().estimated_bytes);

    out->sched = sched.stats();

    // ---- arena audit: drop every session (failed victims included)
    // and the polled outputs' buffers; the shared arena must drain. ----
    for (int c = 0; c < kSessionClassCount; ++c)
        unaffected[c].clear();
    corrupt_victims.clear();
    stall_victims.clear();
    transient.reset();
    out->arena_drained = wait_until(
        [&] { return sched.stats().arena.outstanding == 0; });
    if (!out->arena_drained)
        std::fprintf(stderr, "arena did not drain: %lld buffers\n",
                     static_cast<long long>(
                         sched.stats().arena.outstanding));

    return clean;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path = "hdvb_cache/chaos_report.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }
    const int frames = smoke ? 8 : 32;

    std::printf("HD-VideoBench chaos loadgen: %d workers, %d unaffected "
                "sessions, %d corrupt + %d stall victims, %d "
                "frames/session%s\n",
                kWorkers, kPerClass * kSessionClassCount,
                kCorruptVictims, kStallVictims, frames,
                smoke ? " [smoke]" : "");

    std::vector<Packet> streams[kCodecCount];
    EncodedStream victim_clean;
    const Status prepared =
        prepare_streams(frames, streams, &victim_clean);
    if (!prepared.is_ok()) {
        std::fprintf(stderr, "stream preparation failed: %s\n",
                     prepared.to_string().c_str());
        return 1;
    }

    // Pre-validate one terminal corruption seed per victim, so every
    // injected stream fault is guaranteed (and reproducible), not
    // probabilistic.
    std::vector<u64> corrupt_seeds;
    for (u64 seed = 7; corrupt_seeds.size() <
                       static_cast<size_t>(kCorruptVictims);
         ++seed) {
        if (plan_is_terminal(corrupted_copy(victim_clean,
                                            severe_plan(seed))))
            corrupt_seeds.push_back(seed);
        if (seed > 7 + 256) {
            std::fprintf(stderr, "no terminal corruption seeds found\n");
            return 1;
        }
    }

    PassResult baseline;
    PassResult chaos;
    if (!run_pass(false, frames, streams, victim_clean, corrupt_seeds,
                  &baseline)) {
        std::fprintf(stderr, "baseline pass failed\n");
        return 1;
    }
    if (!run_pass(true, frames, streams, victim_clean, corrupt_seeds,
                  &chaos)) {
        std::fprintf(stderr, "chaos pass failed\n");
        return 1;
    }

    // ---- the containment verdict ----
    bool clean = chaos.audit_clean && baseline.audit_clean;
    s64 diverged = 0;
    for (const auto &entry : baseline.digests) {
        const auto it = chaos.digests.find(entry.first);
        if (it == chaos.digests.end() || it->second != entry.second) {
            std::fprintf(stderr,
                         "unaffected session %s diverged under chaos\n",
                         entry.first.c_str());
            ++diverged;
        }
    }
    const s64 expected_failed = kCorruptVictims + kStallVictims;
    const s64 faults_injected =
        chaos.corrupt_failed + chaos.stall_failed +
        chaos.transient_injected + chaos.churn_rejected;
    if (diverged != 0)
        clean = false;
    if (chaos.corrupt_failed != kCorruptVictims ||
        chaos.stall_failed != kStallVictims ||
        chaos.sched.sessions_failed != expected_failed ||
        chaos.unexpected_failures != 0) {
        std::fprintf(stderr, "blast radius violated: %lld failed, %lld "
                             "expected, %lld unexpected\n",
                     static_cast<long long>(chaos.sched.sessions_failed),
                     static_cast<long long>(expected_failed),
                     static_cast<long long>(chaos.unexpected_failures));
        clean = false;
    }
    if (chaos.frames_lost_unaffected != 0) {
        std::fprintf(stderr, "%lld frames lost outside the victims\n",
                     static_cast<long long>(
                         chaos.frames_lost_unaffected));
        clean = false;
    }
    if (!chaos.refund_balanced || !chaos.arena_drained ||
        !baseline.refund_balanced || !baseline.arena_drained)
        clean = false;
    if (chaos.sched.shed_episodes < 1) {
        std::fprintf(stderr, "the burst never tripped the shedder\n");
        clean = false;
    }
    if (faults_injected < 10) {
        std::fprintf(stderr, "only %lld faults injected\n",
                     static_cast<long long>(faults_injected));
        clean = false;
    }

    const double mean_recovery =
        chaos.sched.shed_episodes > 0
            ? chaos.sched.shed_seconds_total /
                  static_cast<double>(chaos.sched.shed_episodes)
            : 0.0;

    JsonWriter json;
    json.begin_object();
    json.field("schema", "hdvb-chaos/1");
    json.field("smoke", smoke);
    json.field("workers", kWorkers);
    json.field("unaffected_sessions", kPerClass * kSessionClassCount);
    json.field("frames_per_session", frames);
    json.key("faults");
    json.begin_object();
    json.field("corrupt_streams", chaos.corrupt_failed);
    json.field("watchdog_stalls", chaos.stall_failed);
    json.field("transient_injected", chaos.transient_injected);
    json.field("admission_churn_rejected", chaos.churn_rejected);
    json.field("total", faults_injected);
    json.end_object();
    json.key("blast_radius");
    json.begin_object();
    json.field("expected_failed_sessions", expected_failed);
    json.field("sessions_failed", chaos.sched.sessions_failed);
    json.field("unaffected_diverged", diverged);
    json.field("unaffected_failed", chaos.unexpected_failures);
    json.end_object();
    json.key("frames");
    json.begin_object();
    json.field("lost_in_victims", chaos.frames_lost_victims);
    json.field("lost_in_unaffected", chaos.frames_lost_unaffected);
    json.end_object();
    json.key("recovery");
    json.begin_object();
    json.field("shed_episodes", chaos.sched.shed_episodes);
    json.field("shed_seconds_total", chaos.sched.shed_seconds_total);
    json.field("mean_time_to_recovery_seconds", mean_recovery);
    json.field("admissions_shed", chaos.sched.admissions_shed);
    json.end_object();
    json.key("classes");
    json.begin_array();
    TableWriter table({"Class", "Run", "Completed", "p50 ms", "p95 ms",
                       "p99 ms"});
    for (int c = 0; c < kSessionClassCount; ++c) {
        const char *name = session_class_name(kAllSessionClasses[c]);
        json.begin_object();
        json.field("class", name);
        for (int run = 0; run < 2; ++run) {
            const PassResult &pass = run == 0 ? baseline : chaos;
            // Shared nearest-rank percentiles (common/stats.h): sort
            // each sample set once, query three ranks.
            std::vector<double> sorted = pass.latencies[c];
            sort_samples(&sorted);
            const double p50 = percentile_sorted(sorted, 0.50) * 1e3;
            const double p95 = percentile_sorted(sorted, 0.95) * 1e3;
            const double p99 = percentile_sorted(sorted, 0.99) * 1e3;
            json.key(run == 0 ? "baseline" : "chaos");
            json.begin_object();
            json.field("submitted", pass.submitted[c]);
            json.field("completed", pass.completed[c]);
            json.field("p50_ms", p50);
            json.field("p95_ms", p95);
            json.field("p99_ms", p99);
            json.end_object();
            table.add_row({name, run == 0 ? "clean" : "chaos",
                           std::to_string(pass.completed[c]),
                           TableWriter::fmt(p50, 2),
                           TableWriter::fmt(p95, 2),
                           TableWriter::fmt(p99, 2)});
        }
        json.end_object();
    }
    json.end_array();
    json.field("refund_balanced", chaos.refund_balanced);
    json.field("arena_drained", chaos.arena_drained);
    json.field("clean", clean);
    json.end_object();

    table.print();
    std::printf("chaos: %lld faults, blast radius %lld/%lld sessions, "
                "%lld frames lost in victims, 0 expected elsewhere "
                "(got %lld), mean recovery %.3fs, %s\n",
                static_cast<long long>(faults_injected),
                static_cast<long long>(chaos.sched.sessions_failed),
                static_cast<long long>(expected_failed),
                static_cast<long long>(chaos.frames_lost_victims),
                static_cast<long long>(chaos.frames_lost_unaffected),
                mean_recovery, clean ? "clean" : "NOT CLEAN");

    const Status written = json.write_file(json_path);
    if (!written.is_ok()) {
        std::fprintf(stderr, "report not written: %s\n",
                     written.to_string().c_str());
        return 1;
    }
    std::printf("(report %s)\n", json_path.c_str());
    return clean ? 0 : 1;
}
