/**
 * @file
 * Reproduces Figure 1(c): encoding performance of the scalar builds.
 *
 * Paper shape: no codec encodes in real time without SIMD; at 1088p
 * the paper measures 3.8 / 0.5 / 0.3 fps for MPEG-2 / MPEG-4 / H.264.
 */
#include "bench/fig1_common.h"

using namespace hdvb;
using namespace hdvb::bench;

int
main()
{
    const int frames = bench_frames_default();
    print_banner("Figure 1(c): encoding performance, scalar version");
    const Fig1Series scalar =
        measure_encode(SimdLevel::kScalar, frames, "fig1c");
    save_series(series_path("enc", SimdLevel::kScalar, frames), "enc",
                SimdLevel::kScalar, frames, scalar);
    print_series("(c)", SimdLevel::kScalar, scalar);
    return 0;
}
