/**
 * @file
 * Transcode trajectory bench: for each codec pair, analysis-reuse
 * transcode fps against the full re-encode oracle, with the PSNR cost
 * and bits saved, as repeat/CoV medians. Writes a schema-versioned
 * `hdvb-transcode/1` JSON; the same section (and numbers) is embedded
 * into `BENCH_<n>.json` by regression_sweep, where bench_compare gates
 * it against the committed baseline.
 *
 * Usage: transcode_sweep [--smoke] [--json OUT] [--repeats N]
 *        [--frames N]
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json_writer.h"
#include "core/report.h"
#include "core/runner.h"
#include "transcode/transcode_bench.h"

using namespace hdvb;

namespace {

struct Options {
    bool smoke = false;
    int repeats = 3;
    int frames = 0;  ///< 0: bench_frames_default()
    std::string json_path;
};

struct Pair {
    CodecId from;
    CodecId to;
};

/** The generational pairs of the paper's transcode scenario: archive
 * codecs re-encoded with the newest one, plus the same-codec pair as
 * the reuse best case. */
constexpr Pair kPairs[] = {
    {CodecId::kMpeg2, CodecId::kH264},
    {CodecId::kMpeg4, CodecId::kH264},
    {CodecId::kMpeg2, CodecId::kMpeg4},
};

void
write_pair(JsonWriter *json, const TranscodePairBench &b)
{
    json->begin_object();
    json->field("pair", b.pair_name());
    json->field("from", codec_name(b.from));
    json->field("to", codec_name(b.to));
    json->field("transcode_fps", b.hint_fps);
    json->field("transcode_fps_cov", b.hint_fps_cov);
    json->field("full_fps", b.full_fps);
    json->field("full_fps_cov", b.full_fps_cov);
    json->field("speedup", b.speedup);
    json->field("psnr_hint_db", b.psnr_hint_db);
    json->field("psnr_full_db", b.psnr_full_db);
    json->field("psnr_delta_db", b.psnr_delta_db);
    json->field("bits_in", b.bits_in);
    json->field("bits_hint", b.bits_hint);
    json->field("bits_full", b.bits_full);
    json->field("hints_pushed", b.hints.pushed);
    json->field("hints_taken", b.hints.taken);
    json->field("hints_missed", b.hints.missed);
    json->end_object();
}

}  // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opt.smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            const StatusOr<const char *> value =
                cli_value(argc, argv, &i);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            opt.json_path = value.value();
        } else if (std::strcmp(argv[i], "--repeats") == 0) {
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 1, 1000);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            opt.repeats = value.value();
        } else if (std::strcmp(argv[i], "--frames") == 0) {
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 1, 1 << 20);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            opt.frames = value.value();
        } else {
            return cli_usage_error(
                argv[0], Status::invalid_argument(
                             std::string("unknown argument: ") +
                             argv[i]));
        }
    }
    const int frames =
        opt.frames > 0 ? opt.frames : bench_frames_default();
    const int repeats = opt.smoke ? 1 : opt.repeats;
    const Resolution res = Resolution::k576p25;
    const SequenceId seq = SequenceId::kRushHour;

    std::printf("transcode sweep: %d frames x %d repeats (%s, %s)\n",
                frames, repeats, resolution_info(res).name,
                sequence_name(seq));

    JsonWriter json;
    json.begin_object();
    json.field("schema", "hdvb-transcode/1");
    json.field("sequence", sequence_name(seq));
    json.field("resolution", resolution_info(res).name);
    json.field("frames", frames);
    json.field("repeats", repeats);
    json.key("pairs");
    json.begin_array();

    TableWriter table({"Pair", "reuse fps", "full fps", "speedup",
                       "dPSNR dB", "bits saved %", "hints"});
    bool ok = true;
    for (const Pair &pair : kPairs) {
        const StatusOr<TranscodePairBench> bench = bench_transcode_pair(
            pair.from, pair.to, res, seq, frames, repeats);
        if (!bench.is_ok()) {
            std::fprintf(stderr, "%s -> %s failed: %s\n",
                         codec_name(pair.from), codec_name(pair.to),
                         bench.status().to_string().c_str());
            ok = false;
            continue;
        }
        const TranscodePairBench &b = bench.value();
        write_pair(&json, b);
        const double saved =
            b.bits_in > 0
                ? 100.0 * (1.0 - static_cast<double>(b.bits_hint) /
                                     static_cast<double>(b.bits_in))
                : 0.0;
        table.add_row(
            {b.pair_name(), TableWriter::fmt(b.hint_fps, 2),
             TableWriter::fmt(b.full_fps, 2),
             TableWriter::fmt(b.speedup, 2),
             TableWriter::fmt(b.psnr_delta_db, 2),
             TableWriter::fmt(saved, 1),
             std::to_string(b.hints.taken) + "/" +
                 std::to_string(b.hints.pushed)});
    }
    json.end_array();
    json.end_object();
    table.print();

    if (!ok)
        return 1;
    if (!opt.json_path.empty()) {
        const Status written = json.write_file(opt.json_path);
        if (!written.is_ok()) {
            std::fprintf(stderr, "report not written: %s\n",
                         written.to_string().c_str());
            return 1;
        }
        std::printf("transcode report: %s\n", opt.json_path.c_str());
    }
    return 0;
}
