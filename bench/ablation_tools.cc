/**
 * @file
 * Tool-level ablation (experiment E9 in DESIGN.md): quantifies what
 * each codec-generation tool contributes to the Table V compression
 * gaps, by disabling tools one at a time and re-measuring
 * rate-distortion at 576p25:
 *
 *   MPEG-4-class: quarter-pel MC off, 4MV off.
 *   H.264-class: deblocking off, Intra4x4 off, partitions off,
 *                single reference.
 *
 * Each variant's points carry their tweaked CodecConfig inside the
 * BenchPoint, and the whole variant x sequence list runs as one
 * parallel sweep.
 */
#include <cstdio>

#include "core/report.h"
#include "core/sweep.h"

using namespace hdvb;

namespace {

struct Variant {
    CodecId codec;
    const char *name;
    void (*tweak)(CodecConfig *);
};

void tweak_none(CodecConfig *) {}
void tweak_no_qpel(CodecConfig *cfg) { cfg->qpel = false; }
void tweak_no_4mv(CodecConfig *cfg) { cfg->four_mv = false; }
void tweak_no_deblock(CodecConfig *cfg) { cfg->deblock = false; }
void tweak_no_intra4(CodecConfig *cfg) { cfg->intra4 = false; }
void tweak_no_parts(CodecConfig *cfg) { cfg->partitions = false; }
void tweak_one_ref(CodecConfig *cfg) { cfg->refs = 1; }

const Variant kVariants[] = {
    {CodecId::kMpeg4, "mpeg4 (full ASP tools)", tweak_none},
    {CodecId::kMpeg4, "mpeg4 -qpel", tweak_no_qpel},
    {CodecId::kMpeg4, "mpeg4 -4mv", tweak_no_4mv},
    {CodecId::kH264, "h264 (full tools)", tweak_none},
    {CodecId::kH264, "h264 -deblock", tweak_no_deblock},
    {CodecId::kH264, "h264 -intra4x4", tweak_no_intra4},
    {CodecId::kH264, "h264 -partitions", tweak_no_parts},
    {CodecId::kH264, "h264 -multiref (1 ref)", tweak_one_ref},
};

}  // namespace

int
main()
{
    const int frames = bench_frames_default();
    print_banner("Ablation: codec-tool contributions at 576p25");

    std::vector<BenchPoint> points;
    for (const Variant &variant : kVariants) {
        for (SequenceId seq : kAllSequences) {
            BenchPoint point;
            point.codec = variant.codec;
            point.sequence = seq;
            point.resolution = Resolution::k576p25;
            point.frames = frames;
            CodecConfig cfg = benchmark_config(
                point.codec, point.resolution, point.simd);
            variant.tweak(&cfg);
            point.config = cfg;
            points.push_back(std::move(point));
        }
    }

    SweepOptions options;
    options.json_path = "hdvb_cache/ablation_report.json";
    SweepRunner runner(options);
    const std::vector<SweepResult> results = runner.run(points);

    TableWriter table({"Variant", "PSNR-Y (dB)", "kbps", "enc fps"});
    size_t next = 0;
    for (const Variant &variant : kVariants) {
        double kbps_sum = 0.0, psnr_sum = 0.0, fps_sum = 0.0;
        for (int s = 0; s < kSequenceCount; ++s) {
            const SweepResult &r = results[next++];
            HDVB_CHECK(r.point.codec == variant.codec);
            kbps_sum += r.bitrate_kbps();
            psnr_sum += r.psnr_y;
            fps_sum += r.encode_fps();
        }
        table.add_row({variant.name,
                       TableWriter::fmt(psnr_sum / kSequenceCount, 2),
                       TableWriter::fmt(kbps_sum / kSequenceCount, 0),
                       TableWriter::fmt(fps_sum / kSequenceCount, 1)});
    }
    table.print();
    std::printf("\n(sweep: %zu points in %.1fs wall, report %s)\n",
                results.size(), runner.last_wall_seconds(),
                options.json_path.c_str());
    std::printf("\nReading: removing a tool should cost bitrate at "
                "roughly equal PSNR (or PSNR at equal rate), tracing "
                "Table V's generation gaps to specific tools.\n");
    return 0;
}
