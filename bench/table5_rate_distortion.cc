/**
 * @file
 * Reproduces Table V of the paper: rate-distortion of the three codecs
 * over four sequences and three resolutions at equivalent constant
 * quality (MPEG QP 5, H.264 QP 26 via Equation 1), plus the Section VI
 * average compression-gain percentages. The 36-point grid runs on the
 * parallel SweepRunner; results arrive in canonical grid order, so the
 * table rows print identically at any HDVB_JOBS value.
 *
 * Paper reference values: MPEG-4 gains 39.4 / 36.7 / 34.1 % over
 * MPEG-2 at 576p/720p/1088p; H.264 gains 48.2 / 49.5 / 51.8 % over
 * MPEG-2 and 19.9 / 19.4 / 26.4 % over MPEG-4.
 */
#include <cstdio>

#include "core/report.h"
#include "core/sweep.h"
#include "dsp/quant.h"

using namespace hdvb;

int
main()
{
    const int frames = bench_frames_default();
    print_banner("Table V: HD-VideoBench rate-distortion comparison");
    std::printf("Coding options (Table IV): constant quality, "
                "MPEG QP %d, H.264 QP %d (Equation 1), I-P-B-B GOP, "
                "%d frames/point (paper: %d)\n\n",
                kBenchmarkMpegQscale,
                h264_qp_from_mpeg(kBenchmarkMpegQscale), frames,
                kPaperFrameCount);

    SweepOptions options;
    options.measure_encode = false;  // bitrate comes from the stream
    options.measure_decode = true;   // PSNR versus the source
    options.cache_dir = "hdvb_cache";
    options.json_path = "hdvb_cache/table5_report.json";
    SweepRunner runner(options);
    const std::vector<SweepResult> results =
        runner.run(sweep_grid(frames, best_simd_level()));

    TableWriter table({"Resolution", "Input", "MPEG-2 PSNR", "kbps",
                       "MPEG-4 PSNR", "kbps", "H.264 PSNR", "kbps"});

    // Canonical grid order is resolution -> sequence -> codec, i.e.
    // each consecutive kCodecCount-slice of results is one table row.
    double rate[kResolutionCount][kSequenceCount][kCodecCount] = {};
    size_t next = 0;
    for (Resolution res : kAllResolutions) {
        for (SequenceId seq : kAllSequences) {
            std::vector<std::string> row = {resolution_info(res).name,
                                            sequence_name(seq)};
            for (CodecId codec : kAllCodecs) {
                const SweepResult &r = results[next++];
                HDVB_CHECK(r.point.codec == codec &&
                           r.point.sequence == seq &&
                           r.point.resolution == res);
                rate[static_cast<int>(res)][static_cast<int>(seq)]
                    [static_cast<int>(codec)] = r.bitrate_kbps();
                row.push_back(TableWriter::fmt(r.psnr_y, 2));
                row.push_back(TableWriter::fmt(r.bitrate_kbps(), 0));
            }
            table.add_row(std::move(row));
        }
    }
    table.print();
    std::printf("\n(sweep: %zu points in %.1fs wall, report %s)\n",
                results.size(), runner.last_wall_seconds(),
                options.json_path.c_str());

    // Section VI averages the per-sequence gains (e.g. the 48.2 %
    // H.264-vs-MPEG-2 number at 576p is the mean of the four
    // per-sequence bitrate reductions), so we do the same.
    print_banner("Section VI: average compression gains");
    std::printf("%-10s  %-22s  %-22s  %-22s\n", "Resolution",
                "MPEG-4 vs MPEG-2", "H.264 vs MPEG-2",
                "H.264 vs MPEG-4");
    for (Resolution res : kAllResolutions) {
        double g42 = 0.0, gh2 = 0.0, gh4 = 0.0;
        for (int s = 0; s < kSequenceCount; ++s) {
            const double *r = rate[static_cast<int>(res)][s];
            g42 += 100.0 * (1.0 - r[1] / r[0]) / kSequenceCount;
            gh2 += 100.0 * (1.0 - r[2] / r[0]) / kSequenceCount;
            gh4 += 100.0 * (1.0 - r[2] / r[1]) / kSequenceCount;
        }
        std::printf("%-10s  %18.1f %%  %18.1f %%  %18.1f %%\n",
                    resolution_info(res).name, g42, gh2, gh4);
    }
    std::printf("\npaper:      mpeg4/mpeg2 39.4/36.7/34.1 %%   "
                "h264/mpeg2 48.2/49.5/51.8 %%   "
                "h264/mpeg4 19.9/19.4/26.4 %%\n");
    return 0;
}
