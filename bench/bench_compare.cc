/**
 * @file
 * The perf-trajectory regression gate: compares two BENCH_<n>.json
 * files (hdvb-bench/1 or /2) and exits non-zero when any metric
 * regressed beyond its noise threshold — max(floor%, sigma * CoV) per
 * metric, using the coefficient of variation the repeat sweeps
 * recorded. Wired into ctest, so a PR that slows a tracked metric
 * down fails mechanically instead of anecdotally.
 *
 * Usage:
 *   bench_compare [--floor-pct F] [--sigma S] OLD.json NEW.json
 *       exit 0: no regressions (improvements and noise are fine)
 *       exit 1: at least one regression, named on stdout
 *       exit 2: a file could not be loaded / schema not understood
 *   bench_compare --doctor IN.json OUT.json [SCALE]
 *       writes a copy of IN with every fps metric scaled by SCALE
 *       (default 0.8, a 20% regression) — the gate's own smoke test
 *       compares a BENCH file against its doctored copy and must
 *       fail.
 *
 * Environment differences (CPU model, cores, SIMD level, build type,
 * missing provenance) are warned about loudly: across environments
 * the verdicts describe the machines, not the code.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.h"
#include "common/json_reader.h"
#include "core/perf_compare.h"
#include "core/report.h"

using namespace hdvb;

namespace {

int
run_doctor(const std::string &in_path, const std::string &out_path,
           double scale)
{
    StatusOr<JsonValue> parsed = parse_json_file(in_path);
    if (!parsed.is_ok()) {
        std::fprintf(stderr, "bench_compare: %s\n",
                     parsed.status().to_string().c_str());
        return 2;
    }
    JsonValue doc = std::move(parsed.value());
    const int scaled = doctor_bench_fps(&doc, scale);
    if (scaled == 0) {
        std::fprintf(stderr,
                     "bench_compare: no fps metrics found to doctor "
                     "in %s\n",
                     in_path.c_str());
        return 2;
    }
    // Re-serialize the whole mutated document (numbers keep exact
    // round-trip formatting, so only the doctored values change).
    const std::string text = doc.to_json();
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size() ||
        std::fputc('\n', f) == EOF || std::fclose(f) != 0) {
        std::fprintf(stderr, "bench_compare: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    std::printf("doctored %d fps metrics by %.2fx: %s -> %s\n", scaled,
                scale, in_path.c_str(), out_path.c_str());
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    CompareOptions options;
    std::vector<std::string> paths;
    bool doctor = false;
    double doctor_scale = 0.8;
    for (int i = 1; i < argc; ++i) {
        // Strict parse: "--sigma 3O" (typo) used to be a silent 3.0
        // via atof's best-effort prefix rule.
        if (std::strcmp(argv[i], "--floor-pct") == 0) {
            const StatusOr<double> value =
                cli_double_value(argc, argv, &i, 0.0, 100.0);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            options.floor_pct = value.value();
        } else if (std::strcmp(argv[i], "--sigma") == 0) {
            const StatusOr<double> value =
                cli_double_value(argc, argv, &i, 0.0, 100.0);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            options.sigma = value.value();
        } else if (std::strcmp(argv[i], "--doctor") == 0) {
            doctor = true;
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (doctor) {
        if (paths.size() == 3) {
            const StatusOr<double> scale =
                cli_double("SCALE", paths[2].c_str(), 1e-6, 1e6);
            if (!scale.is_ok())
                return cli_usage_error(argv[0], scale.status());
            doctor_scale = scale.value();
        }
        if (paths.size() < 2 || paths.size() > 3) {
            std::fprintf(stderr,
                         "usage: bench_compare --doctor IN.json "
                         "OUT.json [SCALE>0]\n");
            return 2;
        }
        return run_doctor(paths[0], paths[1], doctor_scale);
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "usage: bench_compare [--floor-pct F] [--sigma S] "
                     "OLD.json NEW.json\n");
        return 2;
    }

    StatusOr<BenchFile> older = load_bench_file(paths[0]);
    if (!older.is_ok()) {
        std::fprintf(stderr, "bench_compare: %s\n",
                     older.status().to_string().c_str());
        return 2;
    }
    StatusOr<BenchFile> newer = load_bench_file(paths[1]);
    if (!newer.is_ok()) {
        std::fprintf(stderr, "bench_compare: %s\n",
                     newer.status().to_string().c_str());
        return 2;
    }

    const CompareReport report =
        compare_bench(older.value(), newer.value(), options);

    print_banner("BENCH comparison: " + paths[0] + " -> " + paths[1]);
    for (const std::string &warning : report.environment_warnings)
        std::printf("!!! ENVIRONMENT WARNING: %s\n", warning.c_str());
    if (!report.environment_warnings.empty()) {
        std::printf("!!! verdicts below may reflect the environment, "
                    "not the code\n\n");
    }

    TableWriter table({"Metric", "Old", "New", "Delta %", "Thresh %",
                       "Verdict"});
    for (const MetricComparison &row : report.rows) {
        const bool matched = row.verdict != MetricVerdict::kMissing &&
                             row.verdict != MetricVerdict::kNew;
        table.add_row(
            {row.name,
             row.verdict == MetricVerdict::kNew
                 ? "-"
                 : TableWriter::fmt(row.old_value, 3),
             row.verdict == MetricVerdict::kMissing
                 ? "-"
                 : TableWriter::fmt(row.new_value, 3),
             matched ? TableWriter::fmt(row.delta_pct, 2) : "-",
             matched ? TableWriter::fmt(row.threshold_pct, 2) : "-",
             verdict_name(row.verdict)});
    }
    table.print();

    std::printf("\n%d improved, %d regressed, %d within noise, "
                "%d missing, %d new (floor %.1f%%, sigma %.1f)\n",
                report.improved, report.regressed, report.within_noise,
                report.missing, report.added, options.floor_pct,
                options.sigma);
    if (report.has_regressions()) {
        std::printf("\nREGRESSIONS:\n");
        for (const MetricComparison &row : report.rows) {
            if (row.verdict != MetricVerdict::kRegressed)
                continue;
            std::printf("  %s: %.4g -> %.4g (%+.2f%%, threshold "
                        "%.2f%%)\n",
                        row.name.c_str(), row.old_value, row.new_value,
                        row.delta_pct, row.threshold_pct);
        }
        return 1;
    }
    std::printf("verdict: no regressions beyond noise\n");
    return 0;
}
