/**
 * @file
 * Reproduces Figure 1(d): encoding performance with SIMD-optimised
 * kernels, plus the Section VI encode speedups (paper: 2.46x MPEG-2,
 * 2.42x MPEG-4, 2.31x H.264). Even with SIMD, HD encoding stays far
 * below real time for MPEG-4 and H.264 (the paper's closing argument
 * for thread-level parallelism).
 *
 * One panel is printed per SIMD level the running CPU supports (SSE2,
 * AVX2, ...), each with its speedup over the shared scalar baseline;
 * the paper's reference numbers are attached to the strongest level.
 */
#include "bench/fig1_common.h"

using namespace hdvb;
using namespace hdvb::bench;

int
main()
{
    const int frames = bench_frames_default();
    print_banner(
        "Figure 1(d): encoding performance with SIMD optimizations");
    const std::vector<SimdLevel> levels = supported_simd_levels();
    if (levels.size() < 2) {
        std::printf("no SIMD level beyond scalar is available on this "
                    "CPU/build; nothing to compare.\n");
        return 0;
    }
    const Fig1Series scalar =
        load_or_measure(true, SimdLevel::kScalar, frames,
                        "fig1d_scalar");
    for (size_t i = 1; i < levels.size(); ++i) {
        const SimdLevel level = levels[i];
        const std::string report =
            std::string("fig1d_") + simd_level_name(level);
        const Fig1Series simd =
            load_or_measure(true, level, frames, report.c_str());
        print_series("(d)", level, simd);
        print_speedups(scalar, simd, level,
                       i + 1 == levels.size()
                           ? "encode 2.46x MPEG-2, 2.42x MPEG-4, "
                             "2.31x H.264"
                           : nullptr);
    }
    return 0;
}
