/**
 * @file
 * Reproduces Figure 1(d): encoding performance with SIMD-optimised
 * kernels, plus the Section VI encode speedups (paper: 2.46x MPEG-2,
 * 2.42x MPEG-4, 2.31x H.264). Even with SIMD, HD encoding stays far
 * below real time for MPEG-4 and H.264 (the paper's closing argument
 * for thread-level parallelism).
 */
#include "bench/fig1_common.h"

using namespace hdvb;
using namespace hdvb::bench;

int
main()
{
    const int frames = bench_frames_default();
    print_banner(
        "Figure 1(d): encoding performance with SIMD optimizations");
    if (best_simd_level() == SimdLevel::kScalar) {
        std::printf("SSE2 not available in this build; nothing to "
                    "compare.\n");
        return 0;
    }
    const Fig1Series simd =
        measure_encode(SimdLevel::kSse2, frames, "fig1d");
    print_series("(d)", SimdLevel::kSse2, simd);
    Fig1Series scalar;
    if (!load_series(series_path("enc", SimdLevel::kScalar, frames),
                     &scalar)) {
        scalar = measure_encode(SimdLevel::kScalar, frames,
                                "fig1d_scalar");
        save_series(series_path("enc", SimdLevel::kScalar, frames),
                    scalar);
    }
    print_speedups(scalar, simd,
                   "encode 2.46x MPEG-2, 2.42x MPEG-4, 2.31x H.264");
    return 0;
}
