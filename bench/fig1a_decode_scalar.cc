/**
 * @file
 * Reproduces Figure 1(a): decoding performance of the scalar (plain C)
 * codec builds in frames per second, against the 25 fps real-time line.
 *
 * Paper shape: MPEG-2 scalar decodes 576p/720p in real time (88/43 fps)
 * but not 1088p (19 fps); MPEG-4 misses real time at 1088p (9 fps);
 * H.264 misses at 720p (18 fps) and 1088p (8 fps).
 */
#include "bench/fig1_common.h"

using namespace hdvb;
using namespace hdvb::bench;

int
main()
{
    const int frames = bench_frames_default();
    print_banner("Figure 1(a): decoding performance, scalar version");
    const Fig1Series scalar =
        measure_decode(SimdLevel::kScalar, frames, "fig1a");
    save_series(series_path("dec", SimdLevel::kScalar, frames), "dec",
                SimdLevel::kScalar, frames, scalar);
    print_series("(a)", SimdLevel::kScalar, scalar);
    return 0;
}
