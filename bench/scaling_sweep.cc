/**
 * @file
 * Intra-codec thread scaling: encode/decode fps per codec and
 * resolution as CodecConfig::threads grows. The band-parallel codec
 * paths guarantee bit-exact streams at every thread count, so this
 * bench measures pure wall-clock scaling of the same work — the
 * speedup column against the threads=1 baseline is the headline
 * number (acceptance: > 1.5x at 4 threads for 576p encode).
 *
 * Points run through SweepRunner with jobs=1: exactly one point is in
 * flight at a time, so the codec's private pool is the only source of
 * concurrency and per-point fps is undisturbed by neighbours. The
 * observability report lands in hdvb_cache/scaling_report.json
 * (schema hdvb-sweep/4, per-point "threads" field).
 */
#include <cstdio>
#include <thread>
#include <vector>

#include "core/report.h"
#include "core/sweep.h"

using namespace hdvb;

namespace {

constexpr int kThreadCounts[] = {1, 2, 4};
constexpr int kThreadCountN =
    static_cast<int>(sizeof(kThreadCounts) / sizeof(kThreadCounts[0]));

/** fps indexed [codec][resolution][thread-count slot]. */
struct ScalingSeries {
    double enc[kCodecCount][kResolutionCount][kThreadCountN] = {};
    double dec[kCodecCount][kResolutionCount][kThreadCountN] = {};
};

void
print_direction(const char *what,
                const double fps[kCodecCount][kResolutionCount]
                                [kThreadCountN])
{
    std::printf("\n%s fps vs codec threads (speedup vs t=1):\n", what);
    TableWriter table({"Codec", "Resolution", "t=1", "t=2", "t=4",
                       "speedup@4"});
    for (CodecId codec : kAllCodecs) {
        const int c = static_cast<int>(codec);
        for (Resolution res : kAllResolutions) {
            const int r = static_cast<int>(res);
            const double base = fps[c][r][0];
            table.add_row(
                {codec_display_name(codec), resolution_info(res).name,
                 TableWriter::fmt(fps[c][r][0], 2),
                 TableWriter::fmt(fps[c][r][1], 2),
                 TableWriter::fmt(fps[c][r][2], 2),
                 base > 0 ? TableWriter::fmt(fps[c][r][2] / base, 2) +
                                "x"
                          : "-"});
        }
    }
    table.print();
}

}  // namespace

int
main()
{
    const int frames = bench_frames_default();
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("HD-VideoBench thread-scaling sweep (%d frames/point, "
                "sequence rush_hour, %u hardware threads)\n",
                frames, cores);
    if (cores < 4) {
        std::printf("note: fewer hardware threads than the largest "
                    "measured count — speedups are core-bound and "
                    "oversubscribed points may run slower than t=1\n");
    }

    std::vector<BenchPoint> points;
    for (int t : kThreadCounts) {
        std::vector<BenchPoint> grid = sweep_grid(
            {kAllCodecs, kAllCodecs + kCodecCount},
            {SequenceId::kRushHour},
            {kAllResolutions, kAllResolutions + kResolutionCount},
            frames, best_simd_level());
        for (BenchPoint &point : grid) {
            point.threads = t;
            points.push_back(point);
        }
    }

    SweepOptions options;
    options.jobs = 1;  // one point at a time: the codec pool is the
                       // only concurrency, so fps is scaling-clean
    options.json_path = "hdvb_cache/scaling_report.json";
    SweepRunner runner(options);
    const std::vector<SweepResult> results = runner.run(points);

    ScalingSeries series;
    for (const SweepResult &result : results) {
        if (!result.status.is_ok()) {
            std::fprintf(stderr, "point %s (t=%d) failed: %s\n",
                         result.point.label().c_str(),
                         result.point.threads,
                         result.status.to_string().c_str());
            continue;
        }
        int slot = 0;
        for (int i = 0; i < kThreadCountN; ++i)
            if (kThreadCounts[i] == result.point.threads)
                slot = i;
        const int c = static_cast<int>(result.point.codec);
        const int r = static_cast<int>(result.point.resolution);
        series.enc[c][r][slot] = result.encode_fps();
        series.dec[c][r][slot] = result.decode_fps();
    }

    print_direction("Encode", series.enc);
    print_direction("Decode", series.dec);
    std::printf("\n(sweep: %zu points in %.1fs wall, report %s)\n",
                points.size(), runner.last_wall_seconds(),
                options.json_path.c_str());
    return 0;
}
