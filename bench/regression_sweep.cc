/**
 * @file
 * The canonical perf-trajectory sweep: one command that regenerates
 * `BENCH_<n>.json`, the compact schema-versioned perf baseline
 * committed per PR and gated by bench_compare. Four sections, all
 * with a measured noise estimate:
 *
 *  - codecs: per-codec encode/decode fps at the standard resolutions
 *    (SweepRunner with SweepOptions::repeats — warm-up + N timed
 *    repetitions per point, hdvb-sweep/6 median/CoV) plus the
 *    allocs/frame hot-path counter;
 *  - kernels: the kernels_microbench binary spawned with
 *    --benchmark_repetitions, medians and CoV parsed from its JSON;
 *  - serve: server_loadgen --smoke spawned N times, per-class
 *    p50/p95/p99 and aggregate fps summarized across runs;
 *  - transcode: per codec pair, analysis-reuse transcode fps vs. the
 *    full re-encode oracle with the PSNR cost (hdvb-transcode/1,
 *    shared with bench/transcode_sweep);
 *  - pareto: per codec, encode fps and PSNR/bitrate deltas at every
 *    approximation level on the best SIMD tier (hdvb-pareto/1, shared
 *    with bench/pareto_sweep).
 *
 * The document opens with a run-provenance block (git sha, CPU model,
 * core count, detected SIMD level, repeat count, build type) so the
 * comparator can tell an environment change from a regression — a
 * BENCH file without provenance is a number with no experiment
 * attached.
 *
 * The sweep runs its measurements on one job on purpose: the grid
 * parallelism that makes the figure benches fast would make every
 * point contend with its neighbours and show up as CoV.
 *
 * Usage: regression_sweep [--smoke] [--json OUT] [--pr N]
 *        [--repeats N] [--frames N] [--loadgen PATH] [--kernels PATH]
 *        [--skip-serve] [--skip-kernels] [--skip-transcode]
 *        [--skip-pareto] [--full-res]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/stats.h"
#include "core/benchmark.h"
#include "core/report.h"
#include "core/sweep.h"
#include "core/pareto_bench.h"
#include "simd/dispatch.h"
#include "transcode/transcode_bench.h"

using namespace hdvb;

namespace {

struct Options {
    bool smoke = false;
    bool skip_serve = false;
    bool skip_kernels = false;
    bool skip_transcode = false;
    bool skip_pareto = false;
    bool full_res = false;  ///< include 1088p25 in the codec matrix
    int pr = 10;
    int repeats = 3;
    int frames = 0;  ///< 0: bench_frames_default()
    std::string json_path = "hdvb_cache/bench_report.json";
    std::string loadgen_path;  ///< default: sibling of this binary
    std::string kernels_path;
};

std::string
sibling_tool(const char *argv0, const char *name)
{
    const std::string self(argv0);
    const size_t slash = self.rfind('/');
    if (slash == std::string::npos)
        return name;
    return self.substr(0, slash + 1) + name;
}

// ---------------------------------------------------------------------
// Provenance

std::string
run_and_read_line(const char *cmd)
{
    std::FILE *pipe = ::popen(cmd, "r");
    if (pipe == nullptr)
        return "";
    char buf[256] = {};
    const char *line = std::fgets(buf, sizeof(buf), pipe);
    ::pclose(pipe);
    if (line == nullptr)
        return "";
    std::string out(line);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out;
}

std::string
git_sha()
{
    // The build tree lives inside the work tree, so discovery works
    // from whatever directory the sweep is launched in.
    const std::string sha =
        run_and_read_line("git rev-parse HEAD 2>/dev/null");
    return sha.empty() ? "unknown" : sha;
}

std::string
cpu_model()
{
    std::FILE *f = std::fopen("/proc/cpuinfo", "r");
    if (f == nullptr)
        return "unknown";
    char line[512];
    std::string model = "unknown";
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::strncmp(line, "model name", 10) != 0)
            continue;
        const char *colon = std::strchr(line, ':');
        if (colon != nullptr) {
            model = colon + 1;
            while (!model.empty() &&
                   (model.front() == ' ' || model.front() == '\t'))
                model.erase(model.begin());
            while (!model.empty() && (model.back() == '\n' ||
                                      model.back() == '\r'))
                model.pop_back();
        }
        break;
    }
    std::fclose(f);
    return model;
}

void
write_provenance(JsonWriter *json, const Options &opt)
{
    json->key("provenance");
    json->begin_object();
    json->field("git_sha", git_sha());
    json->field("cpu_model", cpu_model());
    json->field("cores",
                static_cast<int>(std::thread::hardware_concurrency()));
    json->field("simd_detected",
                simd_level_name(detected_simd_level()));
    json->field("build_type",
#ifdef NDEBUG
                "release"
#else
                "debug"
#endif
    );
    json->field("repeats", opt.repeats);
    json->field("smoke", opt.smoke);
    json->end_object();
}

// ---------------------------------------------------------------------
// Section 1: codec fps via the repeat-enabled sweep engine

bool
write_codec_section(JsonWriter *json, const Options &opt)
{
    std::vector<Resolution> resolutions = {Resolution::k576p25};
    if (!opt.smoke) {
        resolutions.push_back(Resolution::k720p25);
        if (opt.full_res)
            resolutions.push_back(Resolution::k1088p25);
    }
    const int frames =
        opt.frames > 0 ? opt.frames : bench_frames_default();
    const std::vector<BenchPoint> points = sweep_grid(
        {kAllCodecs, kAllCodecs + kCodecCount},
        {SequenceId::kRushHour}, resolutions, frames,
        best_simd_level());

    SweepOptions sweep;
    sweep.jobs = 1;  // contention-free timed regions
    sweep.repeats = opt.repeats;
    SweepRunner runner(sweep);
    const std::vector<SweepResult> results = runner.run(points);

    bool ok = true;
    TableWriter table({"Point", "enc fps (med)", "enc CoV",
                       "dec fps (med)", "dec CoV", "allocs/frame"});
    json->key("codecs");
    json->begin_object();
    json->field("sweep_schema", "hdvb-sweep/6");
    json->field("sequence", sequence_name(SequenceId::kRushHour));
    json->field("frames", frames);
    json->field("repeats", opt.repeats);
    json->key("points");
    json->begin_array();
    for (const SweepResult &r : results) {
        if (!r.status.is_ok()) {
            std::fprintf(stderr, "point %s failed: %s\n",
                         r.point.label().c_str(),
                         r.status.to_string().c_str());
            ok = false;
            continue;
        }
        json->begin_object();
        json->field("label", r.point.label());
        json->field("codec", codec_name(r.point.codec));
        json->field("resolution",
                    resolution_info(r.point.resolution).name);
        json->field("simd", simd_level_name(r.point.simd));
        json->field("repeats", r.repeats);
        json->field("encode_fps_median", r.encode_fps_median());
        json->field("encode_fps_cov", r.encode_fps_cov());
        json->field("decode_fps_median", r.decode_fps_median());
        json->field("decode_fps_cov", r.decode_fps_cov());
        json->field("allocs_per_frame", r.allocs_per_frame());
        json->end_object();
        table.add_row({r.point.label(),
                       TableWriter::fmt(r.encode_fps_median(), 2),
                       TableWriter::fmt(r.encode_fps_cov() * 100, 1),
                       TableWriter::fmt(r.decode_fps_median(), 2),
                       TableWriter::fmt(r.decode_fps_cov() * 100, 1),
                       TableWriter::fmt(r.allocs_per_frame(), 2)});
    }
    json->end_array();
    json->end_object();
    table.print();
    return ok;
}

// ---------------------------------------------------------------------
// Section 2: kernel microbench medians (spawned google-benchmark)

/** google-benchmark times in the entry's own unit -> nanoseconds. */
double
to_ns(double value, const std::string &unit)
{
    if (unit == "us")
        return value * 1e3;
    if (unit == "ms")
        return value * 1e6;
    if (unit == "s")
        return value * 1e9;
    return value;  // ns (the library default)
}

bool
write_kernel_section(JsonWriter *json, const Options &opt)
{
    const std::string out_path = opt.json_path + ".kernels.tmp";
    std::string cmd = opt.kernels_path +
                      " --benchmark_format=console" +
                      " --benchmark_out_format=json" +
                      " --benchmark_out=" + out_path +
                      " --benchmark_repetitions=" +
                      std::to_string(opt.repeats) +
                      " --benchmark_report_aggregates_only=true";
    if (opt.smoke) {
        // CI budget: a representative kernel subset, short timings.
        cmd += " --benchmark_min_time=0.01"
               " '--benchmark_filter=BM_(Sad16x16|SatdRect16x16|"
               "Fdct8x8|Idct8x8|H264HpelHV16x16)/'";
    }
    std::printf("\n[kernels] %s\n", cmd.c_str());
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
        std::fprintf(stderr, "kernels_microbench exited %d\n", rc);
        return false;
    }
    StatusOr<JsonValue> parsed = parse_json_file(out_path);
    std::remove(out_path.c_str());
    if (!parsed.is_ok()) {
        std::fprintf(stderr, "cannot parse benchmark output: %s\n",
                     parsed.status().to_string().c_str());
        return false;
    }

    // One {median, cv} pair per benchmark, keyed by run_name, in
    // first-appearance order.
    struct KernelStat {
        double median_ns = 0.0;
        double cov = 0.0;
    };
    std::vector<std::string> order;
    std::vector<KernelStat> stats;
    const JsonValue &benches = parsed.value().get("benchmarks");
    for (size_t i = 0; i < benches.size(); ++i) {
        const JsonValue &entry = benches.at(i);
        const std::string &aggregate =
            entry.get("aggregate_name").as_string();
        if (aggregate != "median" && aggregate != "cv")
            continue;
        const std::string &name = entry.get("run_name").as_string();
        size_t slot = 0;
        for (; slot < order.size(); ++slot) {
            if (order[slot] == name)
                break;
        }
        if (slot == order.size()) {
            order.push_back(name);
            stats.emplace_back();
        }
        if (aggregate == "median") {
            stats[slot].median_ns =
                to_ns(entry.get("real_time").as_double(),
                      entry.get("time_unit").as_string());
        } else {
            // cv aggregates are dimensionless ratios.
            stats[slot].cov = entry.get("real_time").as_double();
        }
    }
    if (order.empty()) {
        std::fprintf(stderr, "no median aggregates in benchmark "
                             "output\n");
        return false;
    }

    json->key("kernels");
    json->begin_object();
    json->field("harness", "kernels_microbench");
    json->field("repetitions", opt.repeats);
    json->key("medians");
    json->begin_array();
    for (size_t i = 0; i < order.size(); ++i) {
        json->begin_object();
        json->field("name", order[i]);
        json->field("median_ns", stats[i].median_ns);
        json->field("cov", stats[i].cov);
        json->field("time_unit", "ns");
        json->end_object();
    }
    json->end_array();
    json->end_object();
    std::printf("[kernels] %zu benchmarks summarized\n", order.size());
    return true;
}

// ---------------------------------------------------------------------
// Section 3: serve latency percentiles (spawned loadgen, N runs)

bool
write_serve_section(JsonWriter *json, const Options &opt)
{
    static const char *const kPercentiles[] = {"p50_ms", "p95_ms",
                                               "p99_ms"};
    // class name -> direction, and per percentile the run samples
    std::vector<std::string> classes;
    std::vector<std::string> directions;
    std::vector<std::vector<double>> samples;  // [class*3 + pct][run]
    std::vector<double> fps_samples;

    const int runs = opt.repeats;
    for (int run = 0; run < runs; ++run) {
        const std::string out_path = opt.json_path + ".serve.tmp";
        const std::string cmd = opt.loadgen_path + " --smoke --json " +
                                out_path + " > /dev/null";
        const int rc = std::system(cmd.c_str());
        if (rc != 0) {
            std::fprintf(stderr, "server_loadgen exited %d\n", rc);
            return false;
        }
        StatusOr<JsonValue> parsed = parse_json_file(out_path);
        std::remove(out_path.c_str());
        if (!parsed.is_ok()) {
            std::fprintf(stderr, "cannot parse loadgen report: %s\n",
                         parsed.status().to_string().c_str());
            return false;
        }
        const JsonValue &doc = parsed.value();
        const JsonValue &class_array = doc.get("classes");
        for (size_t c = 0; c < class_array.size(); ++c) {
            const JsonValue &cls = class_array.at(c);
            const std::string name = cls.get("class").as_string();
            size_t slot = 0;
            for (; slot < classes.size(); ++slot) {
                if (classes[slot] == name)
                    break;
            }
            if (slot == classes.size()) {
                classes.push_back(name);
                directions.push_back(
                    cls.get("direction").as_string());
                samples.resize(classes.size() * 3);
            }
            for (size_t p = 0; p < 3; ++p) {
                samples[slot * 3 + p].push_back(
                    cls.get(kPercentiles[p]).as_double());
            }
        }
        fps_samples.push_back(
            doc.get("aggregate").get("fps").as_double());
    }
    if (classes.empty()) {
        std::fprintf(stderr, "no classes in loadgen report\n");
        return false;
    }

    json->key("serve");
    json->begin_object();
    json->field("schema", "hdvb-serve/1");
    json->field("smoke", true);
    json->field("runs", runs);
    json->key("classes");
    json->begin_array();
    TableWriter table({"Class", "p50 ms (med)", "p95 ms (med)",
                       "p99 ms (med)", "p99 CoV %"});
    for (size_t c = 0; c < classes.size(); ++c) {
        json->begin_object();
        json->field("class", classes[c]);
        json->field("direction", directions[c]);
        std::vector<std::string> row = {classes[c]};
        double p99_cov = 0.0;
        for (size_t p = 0; p < 3; ++p) {
            const SampleSummary summary =
                summarize(samples[c * 3 + p]);
            json->field(kPercentiles[p], summary.median);
            json->field(std::string(kPercentiles[p]) + "_cov",
                        summary.cov);
            row.push_back(TableWriter::fmt(summary.median, 3));
            if (p == 2)
                p99_cov = summary.cov;
        }
        row.push_back(TableWriter::fmt(p99_cov * 100, 1));
        json->end_object();
        table.add_row(std::move(row));
    }
    json->end_array();
    const SampleSummary fps = summarize(fps_samples);
    json->key("aggregate");
    json->begin_object();
    json->field("fps", fps.median);
    json->field("fps_cov", fps.cov);
    json->end_object();
    json->end_object();
    std::printf("\n[serve] %d runs, aggregate %.1f fps (CoV %.1f%%)\n",
                runs, fps.median, fps.cov * 100);
    table.print();
    return true;
}

// ---------------------------------------------------------------------
// Section 4: transcode fps vs. the full re-encode oracle

bool
write_transcode_section(JsonWriter *json, const Options &opt)
{
    // The same schema transcode_sweep emits standalone; embedded here
    // it rides the BENCH trajectory and bench_compare's noise gate.
    struct Pair {
        CodecId from;
        CodecId to;
    };
    static constexpr Pair kPairs[] = {
        {CodecId::kMpeg2, CodecId::kH264},
        {CodecId::kMpeg4, CodecId::kH264},
    };
    const int frames =
        opt.frames > 0 ? opt.frames : bench_frames_default();
    const int repeats = opt.repeats;

    json->key("transcode");
    json->begin_object();
    json->field("schema", "hdvb-transcode/1");
    json->field("sequence", sequence_name(SequenceId::kRushHour));
    json->field("resolution",
                resolution_info(Resolution::k576p25).name);
    json->field("frames", frames);
    json->field("repeats", repeats);
    json->key("pairs");
    json->begin_array();
    bool ok = true;
    TableWriter table({"Pair", "reuse fps", "full fps", "speedup",
                       "dPSNR dB"});
    for (const Pair &pair : kPairs) {
        const StatusOr<TranscodePairBench> bench = bench_transcode_pair(
            pair.from, pair.to, Resolution::k576p25,
            SequenceId::kRushHour, frames, repeats);
        if (!bench.is_ok()) {
            std::fprintf(stderr, "transcode %s -> %s failed: %s\n",
                         codec_name(pair.from), codec_name(pair.to),
                         bench.status().to_string().c_str());
            ok = false;
            continue;
        }
        const TranscodePairBench &b = bench.value();
        json->begin_object();
        json->field("pair", b.pair_name());
        json->field("from", codec_name(b.from));
        json->field("to", codec_name(b.to));
        json->field("transcode_fps", b.hint_fps);
        json->field("transcode_fps_cov", b.hint_fps_cov);
        json->field("full_fps", b.full_fps);
        json->field("full_fps_cov", b.full_fps_cov);
        json->field("speedup", b.speedup);
        json->field("psnr_hint_db", b.psnr_hint_db);
        json->field("psnr_full_db", b.psnr_full_db);
        json->field("psnr_delta_db", b.psnr_delta_db);
        json->field("bits_in", b.bits_in);
        json->field("bits_hint", b.bits_hint);
        json->field("bits_full", b.bits_full);
        json->field("hints_pushed", b.hints.pushed);
        json->field("hints_taken", b.hints.taken);
        json->field("hints_missed", b.hints.missed);
        json->end_object();
        table.add_row({b.pair_name(), TableWriter::fmt(b.hint_fps, 2),
                       TableWriter::fmt(b.full_fps, 2),
                       TableWriter::fmt(b.speedup, 2),
                       TableWriter::fmt(b.psnr_delta_db, 2)});
    }
    json->end_array();
    json->end_object();
    std::printf("\n[transcode]\n");
    table.print();
    return ok;
}

// ---------------------------------------------------------------------
// Section 5: approximation-tier fps/quality Pareto points

bool
write_pareto_section(JsonWriter *json, const Options &opt)
{
    // The same schema pareto_sweep emits standalone; the BENCH section
    // pins the best SIMD tier only so the trajectory stays compact.
    const int frames =
        opt.frames > 0 ? opt.frames : bench_frames_default();
    const int repeats = opt.repeats;
    const SimdLevel simd = best_simd_level();

    json->key("pareto");
    json->begin_object();
    json->field("schema", "hdvb-pareto/1");
    json->field("sequence", sequence_name(SequenceId::kRushHour));
    json->field("resolution",
                resolution_info(Resolution::k576p25).name);
    json->field("frames", frames);
    json->field("repeats", repeats);
    json->key("points");
    json->begin_array();
    bool ok = true;
    TableWriter table({"Point", "fps", "speedup", "dPSNR dB",
                       "dBits %"});
    for (const CodecId codec : kAllCodecs) {
        const StatusOr<std::vector<ParetoPointBench>> points =
            bench_pareto_codec(codec, Resolution::k576p25,
                               SequenceId::kRushHour, simd, frames,
                               repeats);
        if (!points.is_ok()) {
            std::fprintf(stderr, "pareto %s failed: %s\n",
                         codec_name(codec),
                         points.status().to_string().c_str());
            ok = false;
            continue;
        }
        for (const ParetoPointBench &b : points.value()) {
            json->begin_object();
            json->field("label", b.label());
            json->field("codec", codec_name(b.codec));
            json->field("simd", simd_level_name(b.simd));
            json->field("approx", b.approx);
            json->field("fps", b.fps);
            json->field("fps_cov", b.fps_cov);
            json->field("psnr_db", b.psnr_db);
            json->field("bitrate_kbps", b.bitrate_kbps);
            json->field("speedup", b.speedup);
            json->field("psnr_delta_db", b.psnr_delta_db);
            json->field("bitrate_delta_pct", b.bitrate_delta_pct);
            json->end_object();
            table.add_row({b.label(), TableWriter::fmt(b.fps, 2),
                           TableWriter::fmt(b.speedup, 2),
                           TableWriter::fmt(b.psnr_delta_db, 2),
                           TableWriter::fmt(b.bitrate_delta_pct, 1)});
        }
    }
    json->end_array();
    json->end_object();
    std::printf("\n[pareto]\n");
    table.print();
    return ok;
}

}  // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            opt.smoke = true;
        else if (std::strcmp(argv[i], "--skip-serve") == 0)
            opt.skip_serve = true;
        else if (std::strcmp(argv[i], "--skip-kernels") == 0)
            opt.skip_kernels = true;
        else if (std::strcmp(argv[i], "--skip-transcode") == 0)
            opt.skip_transcode = true;
        else if (std::strcmp(argv[i], "--skip-pareto") == 0)
            opt.skip_pareto = true;
        else if (std::strcmp(argv[i], "--full-res") == 0)
            opt.full_res = true;
        else if (std::strcmp(argv[i], "--json") == 0 ||
                 std::strcmp(argv[i], "--loadgen") == 0 ||
                 std::strcmp(argv[i], "--kernels") == 0) {
            const std::string flag = argv[i];
            const StatusOr<const char *> value =
                cli_value(argc, argv, &i);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            if (flag == "--json")
                opt.json_path = value.value();
            else if (flag == "--loadgen")
                opt.loadgen_path = value.value();
            else
                opt.kernels_path = value.value();
        } else if (std::strcmp(argv[i], "--pr") == 0 ||
                   std::strcmp(argv[i], "--repeats") == 0 ||
                   std::strcmp(argv[i], "--frames") == 0) {
            // Strict parse: "--repeats 1O" (typo) used to be a silent
            // zero, then the clamp quietly turned it into 3.
            const std::string flag = argv[i];
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 0, 1 << 20);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            if (flag == "--pr")
                opt.pr = value.value();
            else if (flag == "--repeats")
                opt.repeats = value.value();
            else
                opt.frames = value.value();
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    if (opt.repeats < 3) {
        // The committed BENCH contract: medians and CoV from at least
        // three timed repetitions, or the noise gate has no noise
        // estimate to gate on.
        std::fprintf(stderr, "repeats clamped to 3 (was %d)\n",
                     opt.repeats);
        opt.repeats = 3;
    }
    if (opt.loadgen_path.empty())
        opt.loadgen_path = sibling_tool(argv[0], "server_loadgen");
    if (opt.kernels_path.empty())
        opt.kernels_path = sibling_tool(argv[0], "kernels_microbench");

    std::printf("HD-VideoBench regression sweep: %d repeats%s -> %s\n",
                opt.repeats, opt.smoke ? " [smoke]" : "",
                opt.json_path.c_str());

    JsonWriter json;
    json.begin_object();
    json.field("schema", "hdvb-bench/2");
    json.field("pr", opt.pr);
    write_provenance(&json, opt);

    bool ok = write_codec_section(&json, opt);
    if (!opt.skip_kernels)
        ok = write_kernel_section(&json, opt) && ok;
    if (!opt.skip_serve)
        ok = write_serve_section(&json, opt) && ok;
    if (!opt.skip_transcode)
        ok = write_transcode_section(&json, opt) && ok;
    if (!opt.skip_pareto)
        ok = write_pareto_section(&json, opt) && ok;
    json.end_object();

    if (!ok) {
        std::fprintf(stderr,
                     "regression sweep incomplete; report not "
                     "written\n");
        return 1;
    }
    const Status written = json.write_file(opt.json_path);
    if (!written.is_ok()) {
        std::fprintf(stderr, "report not written: %s\n",
                     written.to_string().c_str());
        return 1;
    }
    std::printf("\nBENCH report: %s\n", opt.json_path.c_str());
    return 0;
}
