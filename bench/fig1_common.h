/**
 * @file
 * Shared driver for the four Figure 1 benches: decode/encode fps per
 * codec and resolution at a chosen SIMD level, with the paper's 25 fps
 * real-time reference line and the Section VI speedup summaries. The
 * measurement grid runs on the parallel SweepRunner (HDVB_JOBS
 * workers); each point's timed region remains single-threaded, so fps
 * numbers are unchanged from a serial run.
 */
#ifndef HDVB_BENCH_FIG1_COMMON_H
#define HDVB_BENCH_FIG1_COMMON_H

#include <cstdio>
#include <cstring>
#include <vector>
#include <sys/stat.h>

#include "common/log.h"
#include "core/report.h"
#include "core/sweep.h"

namespace hdvb::bench {

inline constexpr double kRealTimeFps = 25.0;
inline constexpr char kCacheDir[] = "hdvb_cache";

/** Version tag written as the first line of every series cache file.
 * Bumped whenever the payload layout or its meaning changes, so a
 * stale cache from an older checkout is re-measured instead of being
 * silently misread as current data. */
inline constexpr char kSeriesSchema[] = "hdvb-fig1-series/2";

/** fps results indexed [codec][resolution] (averaged over the four
 * input sequences, matching Figure 1's per-resolution groups). */
struct Fig1Series {
    double fps[kCodecCount][kResolutionCount] = {};
};

/** Series cache: the (b)/(d) benches reuse the (a)/(c) measurements
 * when run from the same directory, instead of re-timing them. */
inline std::string
series_path(const char *what, SimdLevel simd, int frames)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s/fig1_%s_%s_%d.txt", kCacheDir,
                  what, simd_level_name(simd), frames);
    return buf;
}

/**
 * Load a cached series, validating the header line ("<schema> <what>
 * <simd> <frames>") against what the caller is about to interpret the
 * numbers as. Returns false — forcing a fresh measurement — for a
 * missing file, an older schema, a header that disagrees with the
 * request, or a truncated payload.
 */
inline bool
load_series(const std::string &path, const char *what, SimdLevel simd,
            int frames, Fig1Series *series)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return false;
    char schema[32] = {};
    char got_what[16] = {};
    char got_simd[16] = {};
    int got_frames = 0;
    bool ok = std::fscanf(f, "%31s %15s %15s %d", schema, got_what,
                          got_simd, &got_frames) == 4 &&
              std::strcmp(schema, kSeriesSchema) == 0 &&
              std::strcmp(got_what, what) == 0 &&
              std::strcmp(got_simd, simd_level_name(simd)) == 0 &&
              got_frames == frames;
    for (int c = 0; c < kCodecCount && ok; ++c)
        for (int r = 0; r < kResolutionCount && ok; ++r)
            ok = std::fscanf(f, "%lf", &series->fps[c][r]) == 1;
    std::fclose(f);
    return ok;
}

inline void
save_series(const std::string &path, const char *what, SimdLevel simd,
            int frames, const Fig1Series &series)
{
    ::mkdir(kCacheDir, 0755);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        HDVB_LOG(kWarn) << "series cache not written: " << path
                        << " (open failed); the next bench will "
                           "re-measure this series";
        return;
    }
    std::fprintf(f, "%s %s %s %d\n", kSeriesSchema, what,
                 simd_level_name(simd), frames);
    for (int c = 0; c < kCodecCount; ++c)
        for (int r = 0; r < kResolutionCount; ++r)
            std::fprintf(f, "%f\n", series.fps[c][r]);
    std::fclose(f);
}

/** Every level the running machine can execute, weakest first:
 * kScalar .. detected_simd_level(). The SIMD panels of Figure 1 (b/d)
 * and the speedup summaries iterate this instead of assuming the
 * two-level scalar/SSE2 world. */
inline std::vector<SimdLevel>
supported_simd_levels()
{
    std::vector<SimdLevel> levels;
    for (int i = 0; i <= static_cast<int>(detected_simd_level()); ++i)
        levels.push_back(static_cast<SimdLevel>(i));
    return levels;
}

/**
 * Measure the full Figure-1 grid at @p simd with the sweep engine and
 * fold the per-sequence results into per-(codec, resolution) averages.
 * @p encode selects the timed direction; @p report names the JSON
 * observability report written under the cache directory.
 */
inline Fig1Series
measure_grid(bool encode, SimdLevel simd, int frames, const char *report)
{
    SweepOptions options;
    options.measure_encode = encode;
    options.measure_decode = !encode;
    options.cache_dir = kCacheDir;
    options.json_path =
        std::string(kCacheDir) + "/" + report + "_report.json";
    SweepRunner runner(options);

    const std::vector<BenchPoint> grid = sweep_grid(frames, simd);
    Fig1Series series;
    for (const SweepResult &result : runner.run(grid)) {
        series.fps[static_cast<int>(result.point.codec)]
                  [static_cast<int>(result.point.resolution)] +=
            (encode ? result.encode_fps() : result.decode_fps()) /
            kSequenceCount;
    }
    std::printf("(sweep: %zu points in %.1fs wall, report %s)\n",
                grid.size(), runner.last_wall_seconds(),
                options.json_path.c_str());
    return series;
}

inline Fig1Series
measure_decode(SimdLevel simd, int frames, const char *report)
{
    return measure_grid(false, simd, frames, report);
}

inline Fig1Series
measure_encode(SimdLevel simd, int frames, const char *report)
{
    return measure_grid(true, simd, frames, report);
}

/** Load-or-measure: the (b)/(d) benches call this for every level so a
 * series measured by a previous run (or by fig1a/c) is never re-timed. */
inline Fig1Series
load_or_measure(bool encode, SimdLevel simd, int frames,
                const char *report)
{
    const char *what = encode ? "enc" : "dec";
    const std::string path = series_path(what, simd, frames);
    Fig1Series series;
    if (load_series(path, what, simd, frames, &series)) {
        std::printf("(%s %s series loaded from %s)\n",
                    simd_level_name(simd), what, path.c_str());
        return series;
    }
    series = measure_grid(encode, simd, frames, report);
    save_series(path, what, simd, frames, series);
    return series;
}

/** Print one Figure 1 panel. */
inline void
print_series(const char *what, SimdLevel simd, const Fig1Series &series)
{
    TableWriter table({"Codec", "576p25 fps", "720p25 fps",
                       "1088p25 fps", "real-time?"});
    for (CodecId codec : kAllCodecs) {
        const double *row = series.fps[static_cast<int>(codec)];
        std::string rt;
        for (int r = 0; r < kResolutionCount; ++r)
            rt += row[r] >= kRealTimeFps ? 'y' : 'n';
        table.add_row({std::string(codec_display_name(codec)) + "_" +
                           simd_level_name(simd),
                       TableWriter::fmt(row[0], 1),
                       TableWriter::fmt(row[1], 1),
                       TableWriter::fmt(row[2], 1), rt});
    }
    table.print();
    std::printf("\nReal time = %.0f fps (horizontal line in the "
                "paper's Figure 1%s)\n",
                kRealTimeFps, what);
}

/** Print the Section VI average speedups of @p simd over the scalar
 * baseline. Resolutions whose baseline fps is zero (a failed or
 * skipped point) are excluded from the average rather than dividing
 * by zero. */
inline void
print_speedups(const Fig1Series &scalar, const Fig1Series &simd,
               SimdLevel level, const char *paper_values)
{
    std::printf("\nAverage %s speedup per codec (over all "
                "resolutions):\n",
                simd_level_name(level));
    for (CodecId codec : kAllCodecs) {
        double ratio = 0.0;
        int counted = 0;
        for (int r = 0; r < kResolutionCount; ++r) {
            const double base = scalar.fps[static_cast<int>(codec)][r];
            if (base <= 0.0)
                continue;
            ratio += simd.fps[static_cast<int>(codec)][r] / base;
            ++counted;
        }
        if (counted == 0)
            std::printf("  %-7s n/a (no scalar baseline)\n",
                        codec_display_name(codec));
        else
            std::printf("  %-7s %.2fx\n", codec_display_name(codec),
                        ratio / counted);
    }
    if (paper_values != nullptr)
        std::printf("  (paper: %s)\n", paper_values);
}

}  // namespace hdvb::bench

#endif  // HDVB_BENCH_FIG1_COMMON_H
