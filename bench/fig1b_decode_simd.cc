/**
 * @file
 * Reproduces Figure 1(b): decoding performance with SIMD-optimised
 * kernels, plus the Section VI decode speedups (paper: 2.13x MPEG-2,
 * 1.88x MPEG-4, 1.55x H.264), which bring MPEG-2 1088p and H.264
 * 720p into real time.
 */
#include "bench/fig1_common.h"

using namespace hdvb;
using namespace hdvb::bench;

int
main()
{
    const int frames = bench_frames_default();
    print_banner(
        "Figure 1(b): decoding performance with SIMD optimizations");
    if (best_simd_level() == SimdLevel::kScalar) {
        std::printf("SSE2 not available in this build; nothing to "
                    "compare.\n");
        return 0;
    }
    const Fig1Series simd =
        measure_decode(SimdLevel::kSse2, frames, "fig1b");
    print_series("(b)", SimdLevel::kSse2, simd);
    Fig1Series scalar;
    if (!load_series(series_path("dec", SimdLevel::kScalar, frames),
                     &scalar)) {
        scalar = measure_decode(SimdLevel::kScalar, frames,
                                "fig1b_scalar");
        save_series(series_path("dec", SimdLevel::kScalar, frames),
                    scalar);
    }
    print_speedups(scalar, simd,
                   "decode 2.13x MPEG-2, 1.88x MPEG-4, 1.55x H.264");
    return 0;
}
