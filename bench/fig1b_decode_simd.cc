/**
 * @file
 * Reproduces Figure 1(b): decoding performance with SIMD-optimised
 * kernels, plus the Section VI decode speedups (paper: 2.13x MPEG-2,
 * 1.88x MPEG-4, 1.55x H.264), which bring MPEG-2 1088p and H.264
 * 720p into real time.
 *
 * One panel is printed per SIMD level the running CPU supports (SSE2,
 * AVX2, ...), each with its speedup over the shared scalar baseline;
 * the paper's reference numbers are attached to the strongest level.
 */
#include "bench/fig1_common.h"

using namespace hdvb;
using namespace hdvb::bench;

int
main()
{
    const int frames = bench_frames_default();
    print_banner(
        "Figure 1(b): decoding performance with SIMD optimizations");
    const std::vector<SimdLevel> levels = supported_simd_levels();
    if (levels.size() < 2) {
        std::printf("no SIMD level beyond scalar is available on this "
                    "CPU/build; nothing to compare.\n");
        return 0;
    }
    const Fig1Series scalar =
        load_or_measure(false, SimdLevel::kScalar, frames,
                        "fig1b_scalar");
    for (size_t i = 1; i < levels.size(); ++i) {
        const SimdLevel level = levels[i];
        const std::string report =
            std::string("fig1b_") + simd_level_name(level);
        const Fig1Series simd =
            load_or_measure(false, level, frames, report.c_str());
        print_series("(b)", level, simd);
        print_speedups(scalar, simd, level,
                       i + 1 == levels.size()
                           ? "decode 2.13x MPEG-2, 1.88x MPEG-4, "
                             "1.55x H.264"
                           : nullptr);
    }
    return 0;
}
