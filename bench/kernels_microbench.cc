/**
 * @file
 * Kernel-level ablation (experiment E8 in DESIGN.md): google-benchmark
 * microbenchmarks of every dispatched DSP kernel at every SIMD level
 * the running CPU supports (scalar, SSE2, AVX2, ...) — the per-kernel
 * speedups underlying Figure 1's whole-codec speedups.
 */
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "simd/dispatch.h"
#include "video/frame.h"

using namespace hdvb;

namespace {

constexpr int kStride = 1936;  // 1088p luma-ish stride

struct TestData {
    std::vector<Pixel> a;
    std::vector<Pixel> b;
    std::vector<Coeff> coeffs;

    TestData()
    {
        std::mt19937 rng(42);
        a.resize(kStride * 64);
        b.resize(kStride * 64);
        coeffs.resize(64);
        for (auto &px : a)
            px = static_cast<Pixel>(rng() & 0xFF);
        for (auto &px : b)
            px = static_cast<Pixel>(rng() & 0xFF);
        for (auto &c : coeffs)
            c = static_cast<Coeff>(static_cast<int>(rng() % 512) - 256);
    }
};

TestData &
data()
{
    static TestData instance;
    return instance;
}

SimdLevel
level_of(const benchmark::State &state)
{
    return static_cast<SimdLevel>(state.range(0));
}

/** Registers one Arg per level the CPU supports; the bench label
 * carries the dispatched table's name, so a clamped level is visible
 * in the output rather than silently double-counted. */
void
per_detected_level(benchmark::internal::Benchmark *bench)
{
    for (int i = 0; i <= static_cast<int>(detected_simd_level()); ++i)
        bench->Arg(i);
}

void
BM_Sad16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dsp.sad16x16(d.a.data() + 8, kStride, d.b.data(), kStride));
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_Sad16x16)->Apply(per_detected_level);

void
BM_Sad16x16EtBailNever(benchmark::State &state)
{
    // Early-termination SAD with an unreachable bound: the full-sum
    // path, measuring the overhead of the periodic bound checks
    // against plain BM_Sad16x16.
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dsp.sad16x16_et(d.a.data() + 8, kStride, d.b.data(),
                            kStride, INT32_MAX));
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_Sad16x16EtBailNever)->Apply(per_detected_level);

void
BM_Sad16x16EtBailEarly(benchmark::State &state)
{
    // The motion-search common case the kernel exists for: a tight
    // bound (well under random data's per-row sums) makes the kernel
    // bail at its first check.
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsp.sad16x16_et(
            d.a.data() + 8, kStride, d.b.data(), kStride, 64));
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_Sad16x16EtBailEarly)->Apply(per_detected_level);

/** Plane-backed operand meeting the aligned-kernel contract: row
 * starts 32-byte aligned, stride a multiple of 32. */
Plane &
aligned_plane(int fill_seed)
{
    static Plane planes[2] = {Plane(1920, 64, kRefBorder),
                              Plane(1920, 64, kRefBorder)};
    Plane &plane = planes[fill_seed & 1];
    std::mt19937 rng(static_cast<unsigned>(fill_seed));
    for (int y = 0; y < plane.height(); ++y)
        for (int x = 0; x < plane.width(); ++x)
            plane.row(y)[x] = static_cast<Pixel>(rng() & 0xFF);
    return plane;
}

void
BM_Sad16x16Aligned(benchmark::State &state)
{
    // The aligned-load SAD variant the motion-estimation hot loop
    // dispatches to when the current block sits at x0 % 16 == 0;
    // compare against BM_Sad16x16's unaligned operands.
    const Dsp &dsp = get_dsp(level_of(state));
    Plane &a = aligned_plane(1);
    TestData &d = data();
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsp.sad16x16_a(
            a.row(8) + 16, a.stride(), d.b.data() + 3, kStride));
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_Sad16x16Aligned)->Apply(per_detected_level);

void
BM_Satd4x4(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dsp.satd4x4(d.a.data() + 8, kStride, d.b.data(), kStride));
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_Satd4x4)->Apply(per_detected_level);

void
BM_SatdRect16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsp.satd_rect(
            d.a.data() + 8, kStride, d.b.data(), kStride, 16, 16));
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_SatdRect16x16)->Apply(per_detected_level);

void
BM_SatdRect16x16Aligned(benchmark::State &state)
{
    // Same satd_rect kernel as BM_SatdRect16x16 but with a Plane-backed
    // 32-byte-aligned first operand: SATD's 4/8-byte row loads are
    // alignment-agnostic by design, so this pins "no aligned SATD
    // variant needed" with a number (parity expected).
    const Dsp &dsp = get_dsp(level_of(state));
    Plane &a = aligned_plane(2);
    TestData &d = data();
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsp.satd_rect(
            a.row(8) + 16, a.stride(), d.b.data(), kStride, 16, 16));
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_SatdRect16x16Aligned)->Apply(per_detected_level);

void
BM_SseRect16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsp.sse_rect(
            d.a.data() + 8, kStride, d.b.data(), kStride, 16, 16));
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_SseRect16x16)->Apply(per_detected_level);

void
BM_AvgRect16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    std::vector<Pixel> dst(16 * 16);
    for (auto _ : state) {
        dsp.avg_rect(dst.data(), 16, d.a.data() + 8, kStride,
                     d.b.data(), kStride, 16, 16);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_AvgRect16x16)->Apply(per_detected_level);

void
BM_Avg4Rect16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    std::vector<Pixel> dst(16 * 16);
    for (auto _ : state) {
        dsp.avg4_rect(dst.data(), 16, d.a.data() + 8, kStride, 16, 16);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_Avg4Rect16x16)->Apply(per_detected_level);

void
BM_QpelBilin16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    std::vector<Pixel> dst(16 * 16);
    for (auto _ : state) {
        dsp.qpel_bilin_rect(dst.data(), 16, d.a.data() + 8, kStride, 16,
                            16, 1, 3);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_QpelBilin16x16)->Apply(per_detected_level);

void
BM_H264HpelH16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    std::vector<Pixel> dst(16 * 16);
    for (auto _ : state) {
        dsp.h264_hpel_h(dst.data(), 16, d.a.data() + 8, kStride, 16,
                        16);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_H264HpelH16x16)->Apply(per_detected_level);

void
BM_H264HpelV16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    std::vector<Pixel> dst(16 * 16);
    for (auto _ : state) {
        dsp.h264_hpel_v(dst.data(), 16, d.a.data() + kStride * 8,
                        kStride, 16, 16);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_H264HpelV16x16)->Apply(per_detected_level);

void
BM_H264HpelHV16x16(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    std::vector<Pixel> dst(16 * 16);
    for (auto _ : state) {
        dsp.h264_hpel_hv(dst.data(), 16, d.a.data() + kStride * 8 + 8,
                         kStride, 16, 16);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_H264HpelHV16x16)->Apply(per_detected_level);

void
BM_Fdct8x8(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    Coeff blk[64];
    std::copy(data().coeffs.begin(), data().coeffs.end(), blk);
    for (auto _ : state) {
        dsp.fdct8x8(blk);
        benchmark::DoNotOptimize(blk);
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_Fdct8x8)->Apply(per_detected_level);

void
BM_Idct8x8(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    Coeff blk[64];
    std::copy(data().coeffs.begin(), data().coeffs.end(), blk);
    for (auto _ : state) {
        dsp.idct8x8(blk);
        benchmark::DoNotOptimize(blk);
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_Idct8x8)->Apply(per_detected_level);

void
BM_SubRect8x8(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    TestData &d = data();
    Coeff blk[64];
    for (auto _ : state) {
        dsp.sub_rect(blk, 8, d.a.data() + 8, kStride, d.b.data(),
                     kStride, 8, 8);
        benchmark::DoNotOptimize(blk);
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_SubRect8x8)->Apply(per_detected_level);

void
BM_AddRect8x8(benchmark::State &state)
{
    const Dsp &dsp = get_dsp(level_of(state));
    Coeff blk[64];
    std::copy(data().coeffs.begin(), data().coeffs.end(), blk);
    std::vector<Pixel> dst(8 * 8, 128);
    for (auto _ : state) {
        dsp.add_rect(dst.data(), 8, blk, 8, 8, 8);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetLabel(dsp.name);
}
BENCHMARK(BM_AddRect8x8)->Apply(per_detected_level);

// ---- Plane-level memory operations (the frame-memory layout's cost
// centres: border extension once per reference picture, whole-plane
// copies on every source frame and anchor promotion). 1920-wide rows
// at a 1088p-like slice height keep one iteration in the microsecond
// range while exercising full cache-line rows.

void
BM_PlaneExtendBorders(benchmark::State &state)
{
    Plane plane(1920, 64, kRefBorder);
    plane.fill(128);
    for (auto _ : state) {
        plane.extend_borders();
        benchmark::DoNotOptimize(plane.row(0));
    }
}
BENCHMARK(BM_PlaneExtendBorders);

void
BM_PlaneCopy(benchmark::State &state)
{
    Plane src(1920, 64, kRefBorder);
    src.fill(73);
    Plane dst(1920, 64, kRefBorder);
    for (auto _ : state) {
        dst.copy_from(src);
        benchmark::DoNotOptimize(dst.row(0));
    }
}
BENCHMARK(BM_PlaneCopy);

}  // namespace

BENCHMARK_MAIN();
