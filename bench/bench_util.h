/**
 * @file
 * Shared helpers for the bench binaries: the per-point stream cache
 * (decode benches reuse streams encoded by earlier benches in the same
 * working directory) and small formatting utilities.
 */
#ifndef HDVB_BENCH_BENCH_UTIL_H
#define HDVB_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <sys/stat.h>

#include "container/container.h"
#include "core/runner.h"

namespace hdvb::bench {

inline std::string
cache_path(const BenchPoint &point)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "hdvb_cache/%s_%s_%s_%d.hdv",
                  codec_name(point.codec),
                  sequence_name(point.sequence),
                  resolution_info(point.resolution).name, point.frames);
    return buf;
}

/**
 * Return the encoded stream for @p point, reusing a cached file when
 * present (bitstreams are independent of SimdLevel — the kernel levels
 * are bit-exact — so one cache entry serves both Figure 1 variants).
 */
inline EncodedStream
get_or_encode(const BenchPoint &point)
{
    const std::string path = cache_path(point);
    EncodedStream stream;
    if (read_stream_file(path, &stream).is_ok() &&
        stream.codec == codec_name(point.codec)) {
        return stream;
    }
    EncodeRun run = run_encode(point);
    ::mkdir("hdvb_cache", 0755);
    (void)write_stream_file(path, run.stream);
    return std::move(run.stream);
}

}  // namespace hdvb::bench

#endif  // HDVB_BENCH_BENCH_UTIL_H
