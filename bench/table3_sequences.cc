/**
 * @file
 * Reproduces Table III: the benchmark's input-sequence set. Prints the
 * paper's metadata (resolutions, frame rate, content description) plus
 * measured ITU-T P.910 SI/TI statistics of the synthetic stand-ins,
 * demonstrating that the four sequences occupy distinct spatial-detail
 * and motion operating points (riverbed most extreme — "very hard to
 * code").
 */
#include <cstdio>

#include "core/report.h"
#include "core/runner.h"
#include "metrics/stats.h"
#include "synth/synth.h"

using namespace hdvb;

int
main()
{
    const int frames = bench_frames_default();
    print_banner("Table III: HD-VideoBench input sequences");
    std::printf("Resolutions: 720x576 / 1280x720 / 1920x1088, 25 fps, "
                "progressive, 4:2:0, %d frames (paper: %d)\n\n",
                frames, kPaperFrameCount);

    TableWriter table({"Sequence", "SI(576p)", "TI(576p)", "SI(720p)",
                       "TI(720p)", "Description"});
    for (SequenceId seq : kAllSequences) {
        std::vector<std::string> row = {sequence_name(seq)};
        for (Resolution res :
             {Resolution::k576p25, Resolution::k720p25}) {
            const ResolutionInfo info = resolution_info(res);
            SyntheticSource source(seq, info.width, info.height);
            SiTiAccumulator acc;
            for (int i = 0; i < frames; ++i)
                acc.add(source.next());
            row.push_back(TableWriter::fmt(acc.si(), 1));
            row.push_back(TableWriter::fmt(acc.ti(), 1));
        }
        row.push_back(sequence_description(seq));
        table.add_row(std::move(row));
        std::fflush(stdout);
    }
    table.print();
    return 0;
}
