/**
 * @file
 * Approximation-tier Pareto sweep: every codec at every executable
 * SIMD tier, encoded at every approximation level (CodecConfig::approx
 * 0..3), measuring encode fps (repeat/CoV medians) and the PSNR and
 * bitrate cost of each level against the exact level 0 run on the same
 * tier. Writes a schema-versioned `hdvb-pareto/1` JSON; the best-tier
 * subset (and numbers) is embedded into `BENCH_<n>.json` by
 * regression_sweep, where bench_compare gates it against the committed
 * baseline.
 *
 * Usage: pareto_sweep [--smoke] [--json OUT] [--repeats N]
 *        [--frames N]
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json_writer.h"
#include "core/pareto_bench.h"
#include "core/report.h"

using namespace hdvb;

namespace {

struct Options {
    bool smoke = false;
    int repeats = 3;
    int frames = 0;  ///< 0: bench_frames_default()
    std::string json_path;
};

void
write_point(JsonWriter *json, const ParetoPointBench &b)
{
    json->begin_object();
    json->field("label", b.label());
    json->field("codec", codec_name(b.codec));
    json->field("simd", simd_level_name(b.simd));
    json->field("approx", b.approx);
    json->field("fps", b.fps);
    json->field("fps_cov", b.fps_cov);
    json->field("psnr_db", b.psnr_db);
    json->field("bitrate_kbps", b.bitrate_kbps);
    json->field("speedup", b.speedup);
    json->field("psnr_delta_db", b.psnr_delta_db);
    json->field("bitrate_delta_pct", b.bitrate_delta_pct);
    json->end_object();
}

}  // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opt.smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            const StatusOr<const char *> value =
                cli_value(argc, argv, &i);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            opt.json_path = value.value();
        } else if (std::strcmp(argv[i], "--repeats") == 0) {
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 1, 1000);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            opt.repeats = value.value();
        } else if (std::strcmp(argv[i], "--frames") == 0) {
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 1, 1 << 20);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            opt.frames = value.value();
        } else {
            return cli_usage_error(
                argv[0], Status::invalid_argument(
                             std::string("unknown argument: ") +
                             argv[i]));
        }
    }
    const int frames =
        opt.frames > 0 ? opt.frames : bench_frames_default();
    const int repeats = opt.smoke ? 1 : opt.repeats;
    const Resolution res = Resolution::k576p25;
    const SequenceId seq = SequenceId::kRushHour;
    const SimdLevel best = best_simd_level();

    std::printf("pareto sweep: %d frames x %d repeats (%s, %s), "
                "tiers up to %s\n",
                frames, repeats, resolution_info(res).name,
                sequence_name(seq), simd_level_name(best));

    JsonWriter json;
    json.begin_object();
    json.field("schema", "hdvb-pareto/1");
    json.field("sequence", sequence_name(seq));
    json.field("resolution", resolution_info(res).name);
    json.field("frames", frames);
    json.field("repeats", repeats);
    json.key("pareto");
    json.begin_object();
    json.key("points");
    json.begin_array();

    TableWriter table({"Point", "fps", "CoV %", "speedup", "dPSNR dB",
                       "dBits %"});
    bool ok = true;
    for (const CodecId codec : kAllCodecs) {
        for (int level = 0; level <= static_cast<int>(best); ++level) {
            const SimdLevel simd = static_cast<SimdLevel>(level);
            const StatusOr<std::vector<ParetoPointBench>> points =
                bench_pareto_codec(codec, res, seq, simd, frames,
                                   repeats);
            if (!points.is_ok()) {
                std::fprintf(stderr, "%s/%s failed: %s\n",
                             codec_name(codec), simd_level_name(simd),
                             points.status().to_string().c_str());
                ok = false;
                continue;
            }
            for (const ParetoPointBench &b : points.value()) {
                write_point(&json, b);
                table.add_row({b.label(), TableWriter::fmt(b.fps, 2),
                               TableWriter::fmt(b.fps_cov * 100.0, 1),
                               TableWriter::fmt(b.speedup, 2),
                               TableWriter::fmt(b.psnr_delta_db, 2),
                               TableWriter::fmt(b.bitrate_delta_pct,
                                                1)});
            }
        }
    }
    json.end_array();
    json.end_object();
    json.end_object();
    table.print();

    if (!ok)
        return 1;
    if (!opt.json_path.empty()) {
        const Status written = json.write_file(opt.json_path);
        if (!written.is_ok()) {
            std::fprintf(stderr, "report not written: %s\n",
                         written.to_string().c_str());
            return 1;
        }
        std::printf("pareto report: %s\n", opt.json_path.c_str());
    }
    return 0;
}
