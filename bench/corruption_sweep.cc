/**
 * @file
 * Graceful-degradation curve: corruption density x codec grid through
 * the fault-injecting sweep engine. Each point encodes a clean 576p
 * stream with error resilience enabled, flips bits in a copy at the
 * given density, and reports decode fps, PSNR and the decoder's
 * concealment counters — PSNR should fall gradually with density
 * (concealment) rather than collapse (desync).
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/sweep.h"

using namespace hdvb;

namespace {

constexpr double kFlipDensities[] = {0.0, 1e-5, 1e-4, 1e-3, 1e-2};
constexpr char kCacheDir[] = "hdvb_cache";

std::string
density_label(double density)
{
    if (density == 0.0)
        return "clean";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", density);
    return buf;
}

}  // namespace

int
main()
{
    const int frames = bench_frames_default();
    print_banner("Corruption sweep: graceful degradation under "
                 "bit flips (576p, error resilience on)");

    // One point per (codec, density). The resilient configuration is a
    // config override, so these points bypass the clean-stream cache by
    // design — resilient bitstreams are not comparable with Table IV.
    std::vector<BenchPoint> grid;
    for (CodecId codec : kAllCodecs) {
        for (double density : kFlipDensities) {
            BenchPoint point;
            point.codec = codec;
            point.sequence = SequenceId::kPedestrianArea;
            point.resolution = Resolution::k576p25;
            point.frames = frames;
            CodecConfig cfg = benchmark_config(
                codec, point.resolution, point.simd);
            cfg.error_resilience = true;
            point.config = cfg;
            if (density > 0.0) {
                FaultPlan plan;
                plan.seed = 7;
                plan.flip_density = density;
                point.fault = plan;
            }
            grid.push_back(point);
        }
    }

    SweepOptions options;
    options.json_path =
        std::string(kCacheDir) + "/corruption_sweep_report.json";
    SweepRunner runner(options);
    const std::vector<SweepResult> results = runner.run(grid);
    std::printf("(sweep: %zu points in %.1fs wall, report %s)\n\n",
                grid.size(), runner.last_wall_seconds(),
                options.json_path.c_str());

    TableWriter table({"Codec", "flip density", "status", "dec fps",
                       "PSNR-Y dB", "MBs concealed", "resyncs",
                       "pics dropped"});
    for (const SweepResult &r : results) {
        const DecodeStats &stats = r.decode_stats;
        table.add_row(
            {codec_display_name(r.point.codec),
             density_label(r.point.fault.has_value()
                               ? r.point.fault->flip_density
                               : 0.0),
             std::string(status_code_name(r.status.code())),
             r.status.is_ok() ? TableWriter::fmt(r.decode_fps(), 1)
                              : "-",
             r.status.is_ok() ? TableWriter::fmt(r.psnr_y, 2) : "-",
             TableWriter::fmt(static_cast<int>(stats.mbs_concealed)),
             TableWriter::fmt(static_cast<int>(stats.resyncs)),
             TableWriter::fmt(
                 static_cast<int>(stats.pictures_dropped))});
    }
    table.print();
    std::printf("\nClean rows set the per-codec baseline; each "
                "density step should lose PSNR gradually while the "
                "concealment counters grow.\n");
    return 0;
}
