/**
 * @file
 * Multi-session server load generator for the serve layer: replays
 * mixed live / VOD-bulk / thumbnail-burst traffic against one
 * SessionScheduler at deliberately oversubscribed session counts
 * (>= 4 sessions per scheduler worker) and reports per-class p50/p95/
 * p99 per-frame latency plus aggregate throughput in a
 * schema-versioned JSON document (hdvb-serve/1, published atomically
 * to hdvb_cache/serve_report.json).
 *
 * Traffic model: each class runs one feeder thread round-robin feeding
 * its sessions. Live sessions encode with a short queue and paced
 * submission (interactive shape); VOD sessions encode in bulk against
 * a deeper queue (throughput shape, constantly backpressured);
 * thumbnail sessions decode pre-encoded tiny streams in bursts.
 * Backpressure rejections are retried and counted, never dropped, so
 * the run is also a lost-frame audit: every submitted ticket must come
 * back as exactly one TicketResult, and the process exits non-zero on
 * any miscount — the property the smoke/TSAN ctest entries gate on.
 *
 * Frames are tiny (96x64) so the interesting contention is in the
 * scheduler, not the DCTs. --smoke shrinks frame counts for CI.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/benchmark.h"
#include "core/report.h"
#include "metrics/timer.h"
#include "serve/scheduler.h"
#include "synth/synth.h"

using namespace hdvb;

namespace {

constexpr int kWidth = 96;
constexpr int kHeight = 64;

/** One traffic class's shape. */
struct ClassPlan {
    SessionClass cls;
    bool encode = true;
    int sessions = 0;
    int frames_per_session = 0;
    size_t queue_capacity = 16;
    double frame_deadline_seconds = 0.0;
    double pace_seconds = 0.0;  ///< feeder sleep between rounds
};

/** Accumulated per-class outcome (single-feeder, no locking needed). */
struct ClassMetrics {
    std::vector<double> latencies;  ///< seconds, completed frames only
    s64 submitted = 0;
    s64 completed = 0;
    s64 failed = 0;
    s64 deadline_missed = 0;
    s64 rejected_submits = 0;  ///< backpressure retries
};

CodecId
codec_for(int session_index)
{
    return kAllCodecs[session_index % kCodecCount];
}

CodecConfig
tiny_config(CodecId codec)
{
    CodecConfig cfg = benchmark_config(codec, Resolution::k576p25,
                                       best_simd_level());
    cfg.width = kWidth;
    cfg.height = kHeight;
    return cfg;
}

/** Encode frames_per_session tiny pictures per codec once, up front;
 * thumbnail decode sessions replay these streams. */
Status
prepare_streams(int frames, std::vector<Packet> streams[kCodecCount])
{
    for (CodecId codec : kAllCodecs) {
        const CodecConfig cfg = tiny_config(codec);
        StatusOr<std::unique_ptr<VideoEncoder>> encoder =
            make_encoder(codec, cfg);
        if (!encoder.is_ok())
            return encoder.status();
        SyntheticSource source(SequenceId::kRushHour, kWidth, kHeight);
        std::vector<Packet> *out = &streams[static_cast<int>(codec)];
        for (int i = 0; i < frames; ++i) {
            const Status status =
                encoder.value()->encode(source.next(), out);
            if (!status.is_ok())
                return status;
        }
        const Status status = encoder.value()->flush(out);
        if (!status.is_ok())
            return status;
    }
    return Status::ok();
}

/**
 * Feed one class's sessions round-robin: frame i goes to every session
 * before frame i+1 goes to any, with bounded retry on backpressure.
 * Returns false on a non-backpressure submit failure.
 */
bool
feed_class(const ClassPlan &plan,
           const std::vector<std::shared_ptr<CodecSession>> &sessions,
           const std::vector<Packet> streams[kCodecCount],
           ClassMetrics *metrics)
{
    SyntheticSource source(SequenceId::kRushHour, kWidth, kHeight);
    std::vector<Packet> packet_sink;
    std::vector<Frame> frame_sink;
    for (int i = 0; i < plan.frames_per_session; ++i) {
        for (size_t s = 0; s < sessions.size(); ++s) {
            CodecSession &session = *sessions[s];
            for (;;) {
                StatusOr<Ticket> ticket =
                    plan.encode
                        ? session.submit(source.at(i))
                        : session.submit(
                              streams[static_cast<int>(codec_for(
                                  static_cast<int>(s)))]
                                  [static_cast<size_t>(i)]);
                if (ticket.is_ok()) {
                    ++metrics->submitted;
                    break;
                }
                if (ticket.status().code() !=
                    StatusCode::kUnavailable) {
                    std::fprintf(stderr, "submit failed: %s\n",
                                 ticket.status().to_string().c_str());
                    return false;
                }
                ++metrics->rejected_submits;
                // Backpressure: let the dispatchers drain the queue.
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
            // Keep output buffers cycling back to the shared arena.
            if (plan.encode)
                session.poll(&packet_sink);
            else
                session.poll(&frame_sink);
            packet_sink.clear();
            frame_sink.clear();
        }
        if (plan.pace_seconds > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(plan.pace_seconds));
        }
    }
    return true;
}

/** Close every session and fold its results into @p metrics; returns
 * false if any ticket was lost or any frame failed outright. */
bool
settle_class(const ClassPlan &plan,
             const std::vector<std::shared_ptr<CodecSession>> &sessions,
             ClassMetrics *metrics)
{
    bool clean = true;
    for (const std::shared_ptr<CodecSession> &session : sessions) {
        const Status status = session->close();
        if (!status.is_ok()) {
            std::fprintf(stderr, "session %s close: %s\n",
                         session->name().c_str(),
                         status.to_string().c_str());
            clean = false;
        }
        s64 seen = 0;
        for (const TicketResult &result : session->take_results()) {
            ++seen;
            if (result.status.is_ok()) {
                ++metrics->completed;
                metrics->latencies.push_back(result.latency_seconds);
            } else if (result.status.code() ==
                       StatusCode::kDeadlineExceeded) {
                ++metrics->deadline_missed;
            } else {
                ++metrics->failed;
                clean = false;
            }
        }
        const SessionCounters counters = session->counters();
        if (seen != counters.submitted) {
            std::fprintf(stderr,
                         "session %s lost frames: %lld submitted, "
                         "%lld results\n",
                         session->name().c_str(),
                         static_cast<long long>(counters.submitted),
                         static_cast<long long>(seen));
            clean = false;
        }
        // Drain flushed output left after the last feeder poll.
        std::vector<Packet> packet_sink;
        std::vector<Frame> frame_sink;
        if (plan.encode)
            session->poll(&packet_sink);
        else
            session->poll(&frame_sink);
    }
    return clean;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path = "hdvb_cache/serve_report.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    SchedulerOptions options;
    options.workers = default_job_count();
    const int workers = options.workers;
    // >= 4 sessions per worker, split across the three classes.
    const int per_class = std::max(2, 2 * workers);
    const int planned_sessions = 3 * per_class;
    options.max_sessions = planned_sessions;
    const int frames = smoke ? 6 : 48;

    ClassPlan plans[kSessionClassCount];
    plans[0] = {SessionClass::kLive, true, per_class, frames,
                /*queue_capacity=*/4, /*deadline=*/5.0,
                /*pace=*/smoke ? 0.0 : 0.002};
    plans[1] = {SessionClass::kVod, true, per_class, frames,
                /*queue_capacity=*/16, 0.0, 0.0};
    plans[2] = {SessionClass::kThumbnail, false, per_class, frames,
                /*queue_capacity=*/8, 0.0, 0.0};

    std::printf("HD-VideoBench server loadgen: %d workers, %d sessions "
                "(%.1fx oversubscribed), %d frames/session%s\n",
                workers, planned_sessions,
                static_cast<double>(planned_sessions) / workers, frames,
                smoke ? " [smoke]" : "");

    std::vector<Packet> streams[kCodecCount];
    const Status prepared = prepare_streams(frames, streams);
    if (!prepared.is_ok()) {
        std::fprintf(stderr, "stream preparation failed: %s\n",
                     prepared.to_string().c_str());
        return 1;
    }

    ClassMetrics metrics[kSessionClassCount];
    s64 admission_rejected = 0;
    double wall_seconds = 0.0;
    bool clean = true;
    FramePoolStats arena;
    {
        SessionScheduler scheduler(options);

        std::vector<std::shared_ptr<CodecSession>>
            sessions[kSessionClassCount];
        for (const ClassPlan &plan : plans) {
            const int c = static_cast<int>(plan.cls);
            for (int s = 0; s < plan.sessions; ++s) {
                const CodecId codec = codec_for(s);
                SessionConfig config;
                config.name = std::string(session_class_name(plan.cls)) +
                              "-" + codec_name(codec) + "-" +
                              std::to_string(s);
                config.priority = plan.cls;
                config.codec_config = tiny_config(codec);
                config.queue_capacity = plan.queue_capacity;
                config.frame_deadline_seconds =
                    plan.frame_deadline_seconds;
                StatusOr<std::shared_ptr<CodecSession>> session =
                    plan.encode
                        ? scheduler.open_encode(
                              make_encoder(codec, config.codec_config)
                                  .value(),
                              config)
                        : scheduler.open_decode(
                              make_decoder(codec, config.codec_config)
                                  .value(),
                              config);
                if (!session.is_ok()) {
                    std::fprintf(stderr, "admission failed: %s\n",
                                 session.status().to_string().c_str());
                    return 1;
                }
                sessions[c].push_back(std::move(session.value()));
            }
        }

        // The budget is full now: further admissions must be rejected,
        // not queued — the admission-control half of the acceptance.
        for (int extra = 0; extra < 2; ++extra) {
            SessionConfig config;
            config.name = "over-budget-" + std::to_string(extra);
            config.codec_config = tiny_config(CodecId::kMpeg2);
            StatusOr<std::shared_ptr<CodecSession>> session =
                scheduler.open_encode(
                    make_encoder(CodecId::kMpeg2, config.codec_config)
                        .value(),
                    config);
            if (session.is_ok()) {
                std::fprintf(stderr,
                             "over-budget session was admitted\n");
                return 1;
            }
            ++admission_rejected;
        }

        WallTimer wall;
        wall.start();
        std::vector<std::thread> feeders;
        bool feed_ok[kSessionClassCount] = {true, true, true};
        for (int c = 0; c < kSessionClassCount; ++c) {
            feeders.emplace_back([&, c] {
                feed_ok[c] = feed_class(plans[c], sessions[c], streams,
                                        &metrics[c]);
            });
        }
        for (std::thread &t : feeders)
            t.join();
        for (int c = 0; c < kSessionClassCount; ++c) {
            clean = settle_class(plans[c], sessions[c], &metrics[c]) &&
                    feed_ok[c] && clean;
        }
        wall.stop();
        wall_seconds = wall.seconds();
        arena = scheduler.arena().stats();

        const SchedulerStats stats = scheduler.stats();
        if (stats.sessions_rejected != admission_rejected) {
            std::fprintf(stderr, "rejection count mismatch\n");
            clean = false;
        }
    }

    s64 total_completed = 0;
    TableWriter table({"Class", "Sessions", "Frames", "Completed",
                       "Missed", "Backpressure", "p50 ms", "p95 ms",
                       "p99 ms"});
    JsonWriter json;
    json.begin_object();
    json.field("schema", "hdvb-serve/1");
    json.field("smoke", smoke);
    json.field("workers", workers);
    json.field("sessions", planned_sessions);
    json.field("oversubscription",
               static_cast<double>(planned_sessions) / workers);
    json.field("frames_per_session", frames);
    json.key("classes");
    json.begin_array();
    for (int c = 0; c < kSessionClassCount; ++c) {
        const ClassPlan &plan = plans[c];
        ClassMetrics &m = metrics[c];
        total_completed += m.completed;
        // Shared nearest-rank percentiles (common/stats.h): one sort
        // per sample set, then as many rank queries as needed.
        sort_samples(&m.latencies);
        const double p50 = percentile_sorted(m.latencies, 0.50) * 1e3;
        const double p95 = percentile_sorted(m.latencies, 0.95) * 1e3;
        const double p99 = percentile_sorted(m.latencies, 0.99) * 1e3;
        json.begin_object();
        json.field("class", session_class_name(plan.cls));
        json.field("direction", plan.encode ? "encode" : "decode");
        json.field("sessions", plan.sessions);
        json.field("submitted", m.submitted);
        json.field("completed", m.completed);
        json.field("failed", m.failed);
        json.field("deadline_missed", m.deadline_missed);
        json.field("rejected_submits", m.rejected_submits);
        json.field("p50_ms", p50);
        json.field("p95_ms", p95);
        json.field("p99_ms", p99);
        json.end_object();
        table.add_row({session_class_name(plan.cls),
                       std::to_string(plan.sessions),
                       std::to_string(m.submitted),
                       std::to_string(m.completed),
                       std::to_string(m.deadline_missed),
                       std::to_string(m.rejected_submits),
                       TableWriter::fmt(p50, 2), TableWriter::fmt(p95, 2),
                       TableWriter::fmt(p99, 2)});
    }
    json.end_array();
    const double fps =
        wall_seconds > 0.0
            ? static_cast<double>(total_completed) / wall_seconds
            : 0.0;
    json.key("aggregate");
    json.begin_object();
    json.field("completed_frames", total_completed);
    json.field("wall_seconds", wall_seconds);
    json.field("fps", fps);
    json.field("admission_rejected", admission_rejected);
    json.field("clean", clean);
    json.end_object();
    json.key("arena");
    json.begin_object();
    json.field("buffer_allocs", arena.buffer_allocs);
    json.field("buffer_reuses", arena.buffer_reuses);
    json.field("bytes_high_water", arena.bytes_high_water);
    json.end_object();
    json.end_object();

    table.print();
    std::printf("aggregate: %lld frames in %.2fs (%.1f fps), arena "
                "high water %lld KiB, %s\n",
                static_cast<long long>(total_completed), wall_seconds,
                fps, static_cast<long long>(arena.bytes_high_water / 1024),
                clean ? "clean" : "NOT CLEAN");

    const Status written = json.write_file(json_path);
    if (!written.is_ok()) {
        std::fprintf(stderr, "report not written: %s\n",
                     written.to_string().c_str());
        return 1;
    }
    std::printf("(report %s)\n", json_path.c_str());
    return clean ? 0 : 1;
}
