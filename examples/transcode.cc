/**
 * @file
 * Transcoding scenario from the paper's introduction: video material
 * archived in an older codec is re-encoded with a newer one. Built on
 * the TranscodeEngine (src/transcode/), which pipelines the decode and
 * encode sessions over the serve scheduler and, by default, reuses the
 * decoder's analysis (motion vectors, mode decisions) to seed the
 * encoder's search — `-no-reuse` falls back to full analysis, the
 * correctness oracle.
 *
 * Usage:
 *   transcode [-from mpeg2] [-to h264] [-res 576p25] [-frames N]
 *             [-threads N] [-no-reuse] [-o out.hdv]
 */
#include <cstdio>
#include <memory>
#include <string>

#include "common/cli.h"
#include "container/container.h"
#include "core/runner.h"
#include "metrics/psnr.h"
#include "transcode/transcode.h"

using namespace hdvb;

namespace {

int
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [-from mpeg2|mpeg4|h264] [-to ...] "
                 "[-res 576p25|720p25|1088p25] [-frames N] "
                 "[-threads N] [-no-reuse] [-o out.hdv]\n",
                 prog);
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    CodecId from = CodecId::kMpeg2;
    CodecId to = CodecId::kH264;
    Resolution res = Resolution::k576p25;
    int frames = bench_frames_default();
    int threads = 1;
    bool reuse = true;
    std::string out_path = "transcode_out.hdv";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-from" || arg == "-to" || arg == "-res") {
            const StatusOr<const char *> value =
                cli_value(argc, argv, &i);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            const bool parsed =
                arg == "-res"
                    ? parse_resolution(value.value(), &res)
                    : parse_codec(value.value(),
                                  arg == "-from" ? &from : &to);
            if (!parsed) {
                return cli_usage_error(
                    argv[0], Status::invalid_argument(
                                 arg + ": unknown value \"" +
                                 value.value() + "\""));
            }
        } else if (arg == "-frames") {
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 1, 1 << 20);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            frames = value.value();
        } else if (arg == "-threads") {
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 1, 64);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            threads = value.value();
        } else if (arg == "-no-reuse") {
            reuse = false;
        } else if (arg == "-reuse") {
            reuse = true;
        } else if (arg == "-o") {
            const StatusOr<const char *> value =
                cli_value(argc, argv, &i);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            out_path = value.value();
        } else {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    // Source material: archive footage in the old codec.
    BenchPoint point;
    point.codec = from;
    point.sequence = SequenceId::kPedestrianArea;
    point.resolution = res;
    point.frames = frames;
    std::fprintf(stderr, "[transcode] preparing %s source stream...\n",
                 codec_name(from));
    StatusOr<EncodeRun> source_or = run_encode(point);
    if (!source_or.is_ok()) {
        std::fprintf(stderr, "[transcode] source encode failed: %s\n",
                     source_or.status().to_string().c_str());
        return 1;
    }
    const EncodedStream &source = source_or.value().stream;

    TranscodeOptions opt =
        transcode_benchmark_options(from, to, res, best_simd_level());
    opt.reuse_analysis = reuse;
    opt.decoder_config.threads = threads;
    opt.encoder_config.threads = threads;

    const TranscodeEngine engine(opt);
    const StatusOr<TranscodeResult> result_or = engine.run(source);
    if (!result_or.is_ok()) {
        std::fprintf(stderr, "[transcode] failed: %s\n",
                     result_or.status().to_string().c_str());
        return 1;
    }
    const TranscodeResult &result = result_or.value();

    if (!write_stream_file(out_path, result.stream).is_ok()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    // Quality of the final generation against the pristine source.
    std::unique_ptr<VideoDecoder> verify =
        make_decoder(to, opt.encoder_config).value();
    std::vector<Frame> final_frames;
    for (const Packet &packet : result.stream.packets) {
        if (!verify->decode(packet, &final_frames).is_ok()) {
            std::fprintf(stderr, "transcoded stream undecodable\n");
            return 1;
        }
    }
    verify->flush(&final_frames);
    SyntheticSource pristine(point.sequence, opt.encoder_config.width,
                             opt.encoder_config.height);
    PsnrAccumulator psnr;
    for (const Frame &frame : final_frames)
        psnr.add(pristine.at(static_cast<int>(frame.poc())), frame);

    const TranscodeStats &stats = result.stats;
    const double in_kbps =
        static_cast<double>(stats.bits_in) * 25.0 / frames / 1000.0;
    const double out_kbps =
        static_cast<double>(stats.bits_out) * 25.0 / frames / 1000.0;
    std::printf("transcode %s -> %s (%s, %d frames, analysis reuse %s)\n",
                codec_name(from), codec_name(to),
                resolution_info(res).name, frames,
                reuse ? "on" : "off");
    std::printf("input:  %8.0f kbps\n", in_kbps);
    std::printf("output: %8.0f kbps  (%.1f %% saving)\n", out_kbps,
                100.0 * (1.0 - out_kbps / in_kbps));
    std::printf("end-to-end PSNR-Y vs pristine source: %.2f dB\n",
                psnr.psnr_y());
    if (reuse) {
        std::printf("hints: %lld pictures exported, %lld consumed, "
                    "%lld missed\n",
                    static_cast<long long>(stats.hints.pushed),
                    static_cast<long long>(stats.hints.taken),
                    static_cast<long long>(stats.hints.missed));
    }
    std::printf("transcode speed: %.2f fps -> wrote %s\n", stats.fps(),
                out_path.c_str());
    return 0;
}
