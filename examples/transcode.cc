/**
 * @file
 * Transcoding scenario from the paper's introduction: video material
 * archived in an older codec is re-encoded with a newer one. Decodes an
 * MPEG-2-class stream and re-encodes it as H.264-class (or any other
 * pair), reporting the bitrate saving and the generational quality
 * loss.
 *
 * Usage:
 *   transcode [-from mpeg2] [-to h264] [-res 576p25] [-frames N]
 *             [-o out.hdv]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "container/container.h"
#include "core/runner.h"
#include "metrics/psnr.h"
#include "metrics/timer.h"

using namespace hdvb;

int
main(int argc, char **argv)
{
    CodecId from = CodecId::kMpeg2;
    CodecId to = CodecId::kH264;
    Resolution res = Resolution::k576p25;
    int frames = bench_frames_default();
    std::string out_path = "transcode_out.hdv";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "-from" && !parse_codec(next(), &from)) return 1;
        else if (arg == "-to" && !parse_codec(next(), &to)) return 1;
        else if (arg == "-res" && !parse_resolution(next(), &res))
            return 1;
        else if (arg == "-frames")
            frames = std::atoi(next());
        else if (arg == "-o")
            out_path = next();
    }

    // Source material: archive footage in the old codec.
    BenchPoint point;
    point.codec = from;
    point.sequence = SequenceId::kPedestrianArea;
    point.resolution = res;
    point.frames = frames;
    std::fprintf(stderr, "[transcode] preparing %s source stream...\n",
                 codec_name(from));
    StatusOr<EncodeRun> source_or = run_encode(point);
    if (!source_or.is_ok()) {
        std::fprintf(stderr, "[transcode] source encode failed: %s\n",
                     source_or.status().to_string().c_str());
        return 1;
    }
    const EncodeRun &source_run = source_or.value();

    const CodecConfig from_cfg =
        benchmark_config(from, res, best_simd_level());
    const CodecConfig to_cfg =
        benchmark_config(to, res, best_simd_level());

    // Decode old -> encode new, streaming frame by frame.
    std::unique_ptr<VideoDecoder> decoder =
        make_decoder(from, from_cfg).value();
    std::unique_ptr<VideoEncoder> encoder =
        make_encoder(to, to_cfg).value();
    EncodedStream out;
    out.codec = codec_name(to);
    out.width = to_cfg.width;
    out.height = to_cfg.height;

    WallTimer timer;
    std::vector<Frame> decoded;
    timer.start();
    for (const Packet &packet : source_run.stream.packets) {
        if (!decoder->decode(packet, &decoded).is_ok()) {
            std::fprintf(stderr, "source stream undecodable\n");
            return 1;
        }
        for (Frame &frame : decoded) {
            if (!encoder->encode(frame, &out.packets).is_ok())
                return 1;
        }
        decoded.clear();
    }
    decoder->flush(&decoded);
    for (Frame &frame : decoded)
        encoder->encode(frame, &out.packets);
    encoder->flush(&out.packets);
    timer.stop();

    if (!write_stream_file(out_path, out).is_ok()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    // Quality of the final generation against the pristine source.
    std::unique_ptr<VideoDecoder> verify =
        make_decoder(to, to_cfg).value();
    std::vector<Frame> final_frames;
    for (const Packet &packet : out.packets)
        verify->decode(packet, &final_frames);
    verify->flush(&final_frames);
    SyntheticSource pristine(point.sequence, to_cfg.width,
                             to_cfg.height);
    PsnrAccumulator psnr;
    for (const Frame &frame : final_frames)
        psnr.add(pristine.at(static_cast<int>(frame.poc())), frame);

    const double in_kbps = static_cast<double>(
                               source_run.stream.total_bits()) *
                           25.0 / frames / 1000.0;
    const double out_kbps =
        static_cast<double>(out.total_bits()) * 25.0 / frames / 1000.0;
    std::printf("transcode %s -> %s (%s, %d frames)\n",
                codec_name(from), codec_name(to),
                resolution_info(res).name, frames);
    std::printf("input:  %8.0f kbps\n", in_kbps);
    std::printf("output: %8.0f kbps  (%.1f %% saving)\n", out_kbps,
                100.0 * (1.0 - out_kbps / in_kbps));
    std::printf("end-to-end PSNR-Y vs pristine source: %.2f dB\n",
                psnr.psnr_y());
    std::printf("transcode speed: %.2f fps -> wrote %s\n",
                frames / timer.seconds(), out_path.c_str());
    return 0;
}
