/**
 * @file
 * Quickstart: encode a short synthetic HD clip with the H.264-class
 * codec, write it to an .hdv container file, decode it back and report
 * quality, bitrate and speed — the whole public API in ~60 lines.
 *
 * Usage: quickstart [codec] [frames]     (default: h264, 16 frames)
 */
#include <cstdio>
#include <cstdlib>

#include "common/cli.h"
#include "container/container.h"
#include "core/benchmark.h"
#include "core/runner.h"
#include "metrics/psnr.h"
#include "metrics/timer.h"
#include "synth/synth.h"

using namespace hdvb;

int
main(int argc, char **argv)
{
    CodecId codec = CodecId::kH264;
    if (argc > 1) {
        const StatusOr<CodecId> parsed = parse_codec(argv[1]);
        if (!parsed.is_ok()) {
            std::fprintf(stderr, "%s\n",
                         parsed.status().to_string().c_str());
            return 1;
        }
        codec = parsed.value();
    }
    int frames = 16;
    if (argc > 2) {
        const StatusOr<int> parsed =
            cli_int("FRAMES", argv[2], 1, 1 << 20);
        if (!parsed.is_ok()) {
            std::fprintf(stderr, "%s\n",
                         parsed.status().to_string().c_str());
            return 1;
        }
        frames = parsed.value();
    }

    // 1. Configure the codec with the benchmark's Table IV settings.
    const CodecConfig cfg = benchmark_config(codec, Resolution::k720p25,
                                             best_simd_level());

    // 2. Encode frames from a synthetic source (swap in Y4mReader for
    //    real footage). make_encoder validates the config and reports
    //    problems as a Status instead of constructing badly.
    StatusOr<std::unique_ptr<VideoEncoder>> maybe_encoder =
        make_encoder(codec, cfg);
    if (!maybe_encoder.is_ok()) {
        std::fprintf(stderr, "encoder: %s\n",
                     maybe_encoder.status().to_string().c_str());
        return 1;
    }
    std::unique_ptr<VideoEncoder> encoder =
        std::move(maybe_encoder).value();
    SyntheticSource source(SequenceId::kBlueSky, cfg.width, cfg.height);
    EncodedStream stream;
    stream.codec = codec_name(codec);
    stream.width = cfg.width;
    stream.height = cfg.height;
    WallTimer enc_timer;
    for (int i = 0; i < frames; ++i) {
        const Frame frame = source.next();
        enc_timer.start();
        const Status status = encoder->encode(frame, &stream.packets);
        enc_timer.stop();
        if (!status.is_ok()) {
            std::fprintf(stderr, "encode: %s\n",
                         status.to_string().c_str());
            return 1;
        }
    }
    enc_timer.start();
    encoder->flush(&stream.packets);
    enc_timer.stop();

    // 3. Persist and reload through the HDV1 container.
    const char *path = "quickstart_out.hdv";
    if (!write_stream_file(path, stream).is_ok()) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    EncodedStream loaded;
    if (!read_stream_file(path, &loaded).is_ok()) {
        std::fprintf(stderr, "cannot reload %s\n", path);
        return 1;
    }

    // 4. Decode and measure quality against the original frames.
    std::unique_ptr<VideoDecoder> decoder =
        make_decoder(codec, cfg).value();
    std::vector<Frame> decoded;
    WallTimer dec_timer;
    for (const Packet &packet : loaded.packets) {
        dec_timer.start();
        const Status status = decoder->decode(packet, &decoded);
        dec_timer.stop();
        if (!status.is_ok()) {
            std::fprintf(stderr, "decode: %s\n",
                         status.to_string().c_str());
            return 1;
        }
    }
    dec_timer.start();
    decoder->flush(&decoded);
    dec_timer.stop();

    PsnrAccumulator psnr;
    for (const Frame &frame : decoded)
        psnr.add(source.at(static_cast<int>(frame.poc())), frame);

    std::printf("codec=%s  %dx%d  %d frames\n", codec_name(codec),
                cfg.width, cfg.height, frames);
    std::printf("bitrate: %.0f kbps   PSNR-Y: %.2f dB\n",
                static_cast<double>(loaded.total_bits()) * 25.0 /
                    frames / 1000.0,
                psnr.psnr_y());
    std::printf("encode: %.2f fps   decode: %.1f fps\n",
                frames / enc_timer.seconds(),
                decoded.size() / dec_timer.seconds());
    std::printf("wrote %s (%zu packets)\n", path,
                loaded.packets.size());
    return 0;
}
