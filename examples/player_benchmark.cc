/**
 * @file
 * MPlayer-style single front end for the benchmark codecs — the role
 * MPlayer plays in the paper's Table IV (`mplayer ... -vc <codec>
 * -nosound -vo null -benchmark`): select a codec, decode a stream with
 * video output disabled, and report decode fps.
 *
 * Usage:
 *   player_benchmark -vc <mpeg2|mpeg4|h264> [-i stream.hdv]
 *                    [-res 576p25|720p25|1088p25] [-frames N]
 *                    [-simd scalar|sse2|avx2] [-vo out.y4m]
 *
 * Without -i, the benchmark point (synthetic blue_sky) runs through the
 * SweepRunner measurement engine — the same code path the Figure 1
 * benches use. With -i, the given stream file is decoded directly (its
 * geometry need not match a benchmark resolution). With -vo, decoded
 * frames are written to a Y4M file instead of being discarded.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.h"
#include "container/container.h"
#include "core/sweep.h"
#include "metrics/timer.h"
#include "video/y4m.h"

using namespace hdvb;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: player_benchmark -vc <mpeg2|mpeg4|h264> "
                 "[-i stream.hdv] [-res 576p25|720p25|1088p25] "
                 "[-frames N] [-simd scalar|sse2|avx2] [-vo out.y4m]\n");
}

/** Decode @p stream (untimed) into @p frames for -vo output. */
bool
decode_all(CodecId codec, const CodecConfig &cfg,
           const EncodedStream &stream, std::vector<Frame> *frames)
{
    StatusOr<std::unique_ptr<VideoDecoder>> decoder =
        make_decoder(codec, cfg);
    if (!decoder.is_ok()) {
        std::fprintf(stderr, "decoder: %s\n",
                     decoder.status().to_string().c_str());
        return false;
    }
    for (const Packet &packet : stream.packets) {
        if (!decoder.value()->decode(packet, frames).is_ok())
            return false;
    }
    return decoder.value()->flush(frames).is_ok();
}

bool
write_y4m(const std::string &path, const CodecConfig &cfg,
          const std::vector<Frame> &frames)
{
    Y4mWriter writer;
    if (!writer
             .open(path, cfg.width, cfg.height, cfg.fps_num, cfg.fps_den)
             .is_ok()) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    for (const Frame &frame : frames)
        writer.write_frame(frame);
    return true;
}

}  // namespace

int
main(int argc, char **argv)
{
    CodecId codec = CodecId::kH264;
    std::string input;
    std::string vo;
    Resolution res = Resolution::k576p25;
    int frames = bench_frames_default();
    SimdLevel simd = best_simd_level();
    bool codec_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        // A flag missing its value is a hard usage error, not an
        // empty string (and "-frames" at the end of the line is no
        // longer a silent request for zero frames).
        auto next = [&]() -> StatusOr<const char *> {
            return cli_value(argc, argv, &i);
        };
        const auto fail = [&](const Status &status) {
            std::fprintf(stderr, "%s\n", status.to_string().c_str());
            usage();
            return 1;
        };
        if (arg == "-vc") {
            const StatusOr<const char *> value = next();
            if (!value.is_ok())
                return fail(value.status());
            const StatusOr<CodecId> parsed = parse_codec(value.value());
            if (!parsed.is_ok()) {
                std::fprintf(stderr, "%s\n",
                             parsed.status().to_string().c_str());
                usage();
                return 1;
            }
            codec = parsed.value();
            codec_set = true;
        } else if (arg == "-i") {
            const StatusOr<const char *> value = next();
            if (!value.is_ok())
                return fail(value.status());
            input = value.value();
        } else if (arg == "-res") {
            const StatusOr<const char *> value = next();
            if (!value.is_ok())
                return fail(value.status());
            const StatusOr<Resolution> parsed =
                parse_resolution(value.value());
            if (!parsed.is_ok()) {
                std::fprintf(stderr, "%s\n",
                             parsed.status().to_string().c_str());
                usage();
                return 1;
            }
            res = parsed.value();
        } else if (arg == "-frames") {
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 1, 1 << 20);
            if (!value.is_ok())
                return fail(value.status());
            frames = value.value();
        } else if (arg == "-simd") {
            const StatusOr<const char *> value = next();
            if (!value.is_ok())
                return fail(value.status());
            const std::string level = value.value();
            if (!parse_simd_level(level, &simd)) {
                std::fprintf(stderr,
                             "unknown SIMD level \"%s\" (one of: %s)\n",
                             level.c_str(), simd_level_names());
                usage();
                return 1;
            }
        } else if (arg == "-vo") {
            const StatusOr<const char *> value = next();
            if (!value.is_ok())
                return fail(value.status());
            vo = value.value();
        } else {
            usage();
            return 1;
        }
    }
    if (!codec_set) {
        usage();
        return 1;
    }

    if (input.empty()) {
        // Benchmark mode: one point through the sweep engine.
        BenchPoint point;
        point.codec = codec;
        point.sequence = SequenceId::kBlueSky;
        point.resolution = res;
        point.frames = frames;
        point.simd = simd;

        SweepOptions options;
        options.measure_encode = false;
        options.measure_decode = true;
        options.keep_streams = !vo.empty();
        SweepRunner runner(options);
        std::fprintf(stderr,
                     "[player] no -i given, measuring point %s...\n",
                     point.label().c_str());
        const SweepResult result = runner.run({point}).front();

        if (!vo.empty()) {
            const CodecConfig cfg = point.effective_config();
            std::vector<Frame> decoded;
            if (!decode_all(codec, cfg, result.stream, &decoded) ||
                !write_y4m(vo, cfg, decoded))
                return 1;
        }
        std::printf("BENCHMARKs: VC %8.3fs (video codec only)\n",
                    result.decode_seconds);
        std::printf("BENCHMARK%%: decoded %d frames at %.2f fps (%s)\n",
                    result.decode_frames, result.decode_fps(),
                    point.label().c_str());
        return 0;
    }

    // File mode: decode the supplied stream directly.
    EncodedStream stream;
    const Status status = read_stream_file(input, &stream);
    if (!status.is_ok()) {
        std::fprintf(stderr, "%s: %s\n", input.c_str(),
                     status.to_string().c_str());
        return 1;
    }
    const StatusOr<CodecId> file_codec = parse_codec(stream.codec);
    if (!file_codec.is_ok() || file_codec.value() != codec) {
        std::fprintf(stderr,
                     "stream codec '%s' does not match -vc %s\n",
                     stream.codec.c_str(), codec_name(codec));
        return 1;
    }

    CodecConfig cfg;
    cfg.width = stream.width;
    cfg.height = stream.height;
    cfg.fps_num = stream.fps_num;
    cfg.fps_den = stream.fps_den;
    cfg.simd = simd;
    StatusOr<std::unique_ptr<VideoDecoder>> decoder =
        make_decoder(codec, cfg);
    if (!decoder.is_ok()) {
        std::fprintf(stderr, "bad stream geometry: %s\n",
                     decoder.status().to_string().c_str());
        return 1;
    }
    std::vector<Frame> decoded;
    WallTimer timer;
    for (const Packet &packet : stream.packets) {
        timer.start();
        const Status decode_status =
            decoder.value()->decode(packet, &decoded);
        timer.stop();
        if (!decode_status.is_ok()) {
            std::fprintf(stderr, "decode error: %s\n",
                         decode_status.to_string().c_str());
            return 1;
        }
    }
    timer.start();
    decoder.value()->flush(&decoded);
    timer.stop();

    if (!vo.empty() && !write_y4m(vo, cfg, decoded))
        return 1;

    // MPlayer "BENCHMARKs" style summary.
    std::printf("BENCHMARKs: VC %8.3fs (video codec only)\n",
                timer.seconds());
    std::printf("BENCHMARK%%: decoded %zu frames at %.2f fps (%s, %s, "
                "%dx%d)\n",
                decoded.size(), decoded.size() / timer.seconds(),
                codec_name(codec), simd_level_name(simd), cfg.width,
                cfg.height);
    return 0;
}
