/**
 * @file
 * MPlayer-style single front end for the benchmark codecs — the role
 * MPlayer plays in the paper's Table IV (`mplayer ... -vc <codec>
 * -nosound -vo null -benchmark`): select a codec, decode a stream with
 * video output disabled, and report decode fps.
 *
 * Usage:
 *   player_benchmark -vc <mpeg2|mpeg4|h264> [-i stream.hdv]
 *                    [-res 576p25|720p25|1088p25] [-frames N]
 *                    [-simd scalar|sse2] [-vo out.y4m]
 *
 * Without -i, a stream is first encoded from the synthetic blue_sky
 * sequence (like pointing MPlayer at a bundled clip). With -vo, decoded
 * frames are written to a Y4M file instead of being discarded.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "container/container.h"
#include "core/runner.h"
#include "metrics/timer.h"
#include "video/y4m.h"

using namespace hdvb;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: player_benchmark -vc <mpeg2|mpeg4|h264> "
                 "[-i stream.hdv] [-res 576p25|720p25|1088p25] "
                 "[-frames N] [-simd scalar|sse2] [-vo out.y4m]\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    CodecId codec = CodecId::kH264;
    std::string input;
    std::string vo;
    Resolution res = Resolution::k576p25;
    int frames = bench_frames_default();
    SimdLevel simd = best_simd_level();
    bool codec_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "-vc") {
            if (!parse_codec(next(), &codec)) {
                usage();
                return 1;
            }
            codec_set = true;
        } else if (arg == "-i") {
            input = next();
        } else if (arg == "-res") {
            if (!parse_resolution(next(), &res)) {
                usage();
                return 1;
            }
        } else if (arg == "-frames") {
            frames = std::atoi(next());
        } else if (arg == "-simd") {
            const std::string level = next();
            simd = level == "scalar" ? SimdLevel::kScalar
                                     : SimdLevel::kSse2;
        } else if (arg == "-vo") {
            vo = next();
        } else {
            usage();
            return 1;
        }
    }
    if (!codec_set) {
        usage();
        return 1;
    }

    EncodedStream stream;
    if (!input.empty()) {
        const Status status = read_stream_file(input, &stream);
        if (!status.is_ok()) {
            std::fprintf(stderr, "%s: %s\n", input.c_str(),
                         status.to_string().c_str());
            return 1;
        }
        CodecId file_codec;
        if (!parse_codec(stream.codec, &file_codec) ||
            file_codec != codec) {
            std::fprintf(stderr,
                         "stream codec '%s' does not match -vc %s\n",
                         stream.codec.c_str(), codec_name(codec));
            return 1;
        }
    } else {
        BenchPoint point;
        point.codec = codec;
        point.sequence = SequenceId::kBlueSky;
        point.resolution = res;
        point.frames = frames;
        point.simd = simd;
        std::fprintf(stderr, "[player] no -i given, encoding %d "
                             "synthetic frames first...\n",
                     frames);
        stream = run_encode(point).stream;
    }

    CodecConfig cfg;
    cfg.width = stream.width;
    cfg.height = stream.height;
    cfg.fps_num = stream.fps_num;
    cfg.fps_den = stream.fps_den;
    cfg.simd = simd;
    const Status valid = cfg.validate();
    if (!valid.is_ok()) {
        std::fprintf(stderr, "bad stream geometry: %s\n",
                     valid.to_string().c_str());
        return 1;
    }

    std::unique_ptr<VideoDecoder> decoder = make_decoder(codec, cfg);
    std::vector<Frame> decoded;
    WallTimer timer;
    for (const Packet &packet : stream.packets) {
        timer.start();
        const Status status = decoder->decode(packet, &decoded);
        timer.stop();
        if (!status.is_ok()) {
            std::fprintf(stderr, "decode error: %s\n",
                         status.to_string().c_str());
            return 1;
        }
    }
    timer.start();
    decoder->flush(&decoded);
    timer.stop();

    if (!vo.empty()) {
        Y4mWriter writer;
        if (!writer.open(vo, cfg.width, cfg.height, cfg.fps_num,
                         cfg.fps_den)
                 .is_ok()) {
            std::fprintf(stderr, "cannot open %s\n", vo.c_str());
            return 1;
        }
        for (const Frame &frame : decoded)
            writer.write_frame(frame);
    }

    // MPlayer "BENCHMARKs" style summary.
    std::printf("BENCHMARKs: VC %8.3fs (video codec only)\n",
                timer.seconds());
    std::printf("BENCHMARK%%: decoded %zu frames at %.2f fps (%s, %s, "
                "%dx%d)\n",
                decoded.size(), decoded.size() / timer.seconds(),
                codec_name(codec), simd_level_name(simd), cfg.width,
                cfg.height);
    return 0;
}
