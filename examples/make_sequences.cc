/**
 * @file
 * Export the synthetic benchmark sequences as YUV4MPEG2 files, so they
 * can be inspected with standard players or fed to real codecs for
 * cross-checking (the role of the downloadable TU München originals in
 * the paper).
 *
 * Usage: make_sequences [-res 576p25|720p25|1088p25] [-frames N]
 *                       [-seq name] [-outdir DIR]
 */
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "core/benchmark.h"
#include "synth/synth.h"
#include "video/y4m.h"

using namespace hdvb;

int
main(int argc, char **argv)
{
    Resolution res = Resolution::k576p25;
    int frames = 16;
    std::string outdir = ".";
    std::string only;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        // Strict values: a trailing flag or a malformed count is a
        // printed error, not a silent 0-frame export.
        if (arg == "-frames") {
            const StatusOr<int> value =
                cli_int_value(argc, argv, &i, 1, 1 << 20);
            if (!value.is_ok())
                return cli_usage_error(argv[0], value.status());
            frames = value.value();
            continue;
        }
        if (arg != "-res" && arg != "-outdir" && arg != "-seq") {
            return cli_usage_error(
                argv[0],
                Status::invalid_argument("unknown flag " + arg));
        }
        const StatusOr<const char *> value = cli_value(argc, argv, &i);
        if (!value.is_ok())
            return cli_usage_error(argv[0], value.status());
        if (arg == "-res") {
            if (!parse_resolution(value.value(), &res)) {
                return cli_usage_error(
                    argv[0], Status::invalid_argument(
                                 "-res: unknown resolution \"" +
                                 std::string(value.value()) + "\""));
            }
        } else if (arg == "-outdir") {
            outdir = value.value();
        } else {
            only = value.value();
        }
    }

    const ResolutionInfo info = resolution_info(res);
    for (SequenceId seq : kAllSequences) {
        if (!only.empty() && only != sequence_name(seq))
            continue;
        const std::string path = outdir + "/" + info.name + "_" +
                                 sequence_name(seq) + ".y4m";
        Y4mWriter writer;
        const Status status =
            writer.open(path, info.width, info.height, info.fps, 1);
        if (!status.is_ok()) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         status.to_string().c_str());
            return 1;
        }
        SyntheticSource source(seq, info.width, info.height);
        for (int i = 0; i < frames; ++i) {
            if (!writer.write_frame(source.next()).is_ok()) {
                std::fprintf(stderr, "short write to %s\n",
                             path.c_str());
                return 1;
            }
        }
        std::printf("wrote %s (%d frames, %dx%d): %s\n", path.c_str(),
                    frames, info.width, info.height,
                    sequence_description(seq));
    }
    return 0;
}
